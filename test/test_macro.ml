(* Macro-level analysis semantics: bit-identical element slacks and
   identical worst paths against flat analysis on every seed design,
   macro invalidation granularity observed through telemetry, the
   rise/fall fallback, the config directive, and the Rss helper. *)

let seed_designs =
  [ ("des", fun () -> Hb_workload.Chips.des ());
    ("alu", fun () -> Hb_workload.Chips.alu ());
    ("sm1f", fun () -> Hb_workload.Chips.sm1f ());
    ("sm1h", fun () -> Hb_workload.Chips.sm1h ());
    ("dsp", fun () -> Hb_workload.Chips.dsp ());
    ("figure1", fun () -> Hb_workload.Figures.figure1 ());
    (* A pocket-sized instance of the scale generator: same topology as
       the 100k/1M presets, small enough for a unit test. *)
    ("feistel_small",
     fun () ->
       Hb_workload.Scale.feistel ~name:"feistel_small" ~tiles:2 ~stages:4
         ~slow_depth:20 ());
  ]

let flat_config = Hb_sta.Config.default
let macro_config = { Hb_sta.Config.default with Hb_sta.Config.macro = true }

(* Parity is claimed bit-for-bit, so compare raw float words — no
   epsilon, and distinguishable infinities/zeros. *)
let check_bits label expected got =
  Alcotest.(check int64) label
    (Int64.bits_of_float expected) (Int64.bits_of_float got)

let check_bit_array label expected got =
  Alcotest.(check int) (label ^ " length")
    (Array.length expected) (Array.length got);
  Array.iteri
    (fun i e -> check_bits (Printf.sprintf "%s.(%d)" label i) e got.(i))
    expected

let analyse_both name build =
  let design, system = build () in
  let flat =
    Hb_sta.Engine.analyse ~design ~system ~config:flat_config
      ~generate_constraints:false ~check_hold:false ()
  in
  let design, system = build () in
  let macro =
    Hb_sta.Engine.analyse ~design ~system ~config:macro_config
      ~generate_constraints:false ~check_hold:false ()
  in
  ignore name;
  (flat, macro)

let test_slack_parity () =
  List.iter
    (fun (name, build) ->
       let flat, macro = analyse_both name build in
       let f = flat.Hb_sta.Engine.outcome and m = macro.Hb_sta.Engine.outcome in
       Alcotest.(check bool) (name ^ " same status")
         (f.Hb_sta.Algorithm1.status = Hb_sta.Algorithm1.Meets_timing)
         (m.Hb_sta.Algorithm1.status = Hb_sta.Algorithm1.Meets_timing);
       Alcotest.(check int) (name ^ " forward cycles")
         f.Hb_sta.Algorithm1.forward_cycles m.Hb_sta.Algorithm1.forward_cycles;
       Alcotest.(check int) (name ^ " backward cycles")
         f.Hb_sta.Algorithm1.backward_cycles m.Hb_sta.Algorithm1.backward_cycles;
       let fs = f.Hb_sta.Algorithm1.final and ms = m.Hb_sta.Algorithm1.final in
       check_bits (name ^ " worst slack") fs.Hb_sta.Slacks.worst
         ms.Hb_sta.Slacks.worst;
       check_bit_array (name ^ " element input slacks")
         fs.Hb_sta.Slacks.element_input_slack
         ms.Hb_sta.Slacks.element_input_slack;
       check_bit_array (name ^ " element output slacks")
         fs.Hb_sta.Slacks.element_output_slack
         ms.Hb_sta.Slacks.element_output_slack;
       (* The final compute is flat in both modes, so the net-level
          arrays must agree bit-for-bit too. *)
       check_bit_array (name ^ " net slacks") fs.Hb_sta.Slacks.net_slack
         ms.Hb_sta.Slacks.net_slack)
    seed_designs

let test_path_parity () =
  List.iter
    (fun (name, build) ->
       let design, system = build () in
       let flat =
         Hb_sta.Session.create ~design ~system ~config:flat_config ()
       in
       let design, system = build () in
       let macro =
         Hb_sta.Session.create ~design ~system ~config:macro_config ()
       in
       let fp = Hb_sta.Session.worst_paths flat ~limit:10 in
       let mp = Hb_sta.Session.worst_paths macro ~limit:10 in
       Alcotest.(check int) (name ^ " path count")
         (List.length fp) (List.length mp);
       List.iter2
         (fun (a : Hb_sta.Paths.path) (b : Hb_sta.Paths.path) ->
            Alcotest.(check int) (name ^ " start element")
              a.Hb_sta.Paths.start_element b.Hb_sta.Paths.start_element;
            Alcotest.(check int) (name ^ " end element")
              a.Hb_sta.Paths.end_element b.Hb_sta.Paths.end_element;
            check_bits (name ^ " path slack") a.Hb_sta.Paths.slack
              b.Hb_sta.Paths.slack;
            Alcotest.(check (list int)) (name ^ " path nets")
              (List.map (fun (h : Hb_sta.Paths.hop) -> h.Hb_sta.Paths.net)
                 a.Hb_sta.Paths.hops)
              (List.map (fun (h : Hb_sta.Paths.hop) -> h.Hb_sta.Paths.net)
                 b.Hb_sta.Paths.hops))
         fp mp)
    seed_designs

(* Rise/fall analysis falls back to flat evaluation: enabling macros must
   change nothing at all. *)
let test_rise_fall_fallback () =
  let rf config = { config with Hb_sta.Config.rise_fall = true } in
  let design, system = Hb_workload.Chips.alu () in
  let flat =
    Hb_sta.Engine.analyse ~design ~system ~config:(rf flat_config)
      ~generate_constraints:false ~check_hold:false ()
  in
  let design, system = Hb_workload.Chips.alu () in
  let macro =
    Hb_sta.Engine.analyse ~design ~system ~config:(rf macro_config)
      ~generate_constraints:false ~check_hold:false ()
  in
  check_bit_array "rise/fall element input slacks"
    flat.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.final
      .Hb_sta.Slacks.element_input_slack
    macro.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.final
      .Hb_sta.Slacks.element_input_slack

(* An instance that carries a cluster timing arc, for delay what-ifs. *)
let arc_instance ctx =
  let design = ctx.Hb_sta.Context.design in
  let clusters = ctx.Hb_sta.Context.table.Hb_sta.Cluster.clusters in
  let hit = ref None in
  Array.iter
    (fun (cluster : Hb_sta.Cluster.t) ->
       if !hit = None && Array.length cluster.Hb_sta.Cluster.arcs > 0 then
         hit :=
           Some
             (cluster.Hb_sta.Cluster.id,
              cluster.Hb_sta.Cluster.arcs.(0).Hb_sta.Cluster.inst))
    clusters;
  match !hit with
  | Some (cluster_id, inst) ->
    (cluster_id,
     (Hb_netlist.Design.instance design inst).Hb_netlist.Design.inst_name)
  | None -> Alcotest.fail "no cluster with arcs"

let test_invalidation_granularity () =
  let design, system = Hb_workload.Chips.des () in
  let config = { macro_config with Hb_sta.Config.telemetry = true } in
  let session = Hb_sta.Session.create ~design ~system ~config () in
  let read () = Hb_util.Telemetry.read_counter Hb_sta.Macro.c_extractions in
  let before = read () in
  ignore
    (Hb_sta.Session.analyse ~generate_constraints:false ~check_hold:false
       session
     : Hb_sta.Session.report);
  let after_first = read () in
  let cluster_count =
    Array.length
      (Hb_sta.Session.context session).Hb_sta.Context.table
        .Hb_sta.Cluster.clusters
  in
  Alcotest.(check int) "first analysis extracts every macro" cluster_count
    (after_first - before);
  (* Re-analysing only moves offsets; every macro is reused. *)
  ignore
    (Hb_sta.Session.analyse ~generate_constraints:false ~check_hold:false
       session
     : Hb_sta.Session.report);
  Alcotest.(check int) "offset moves reuse every macro" after_first (read ());
  (* A single-instance delay edit rebuilds exactly the touched cluster's
     macro. *)
  let _, instance = arc_instance (Hb_sta.Session.context session) in
  let _ : Hb_sta.Session.apply_result =
    Hb_sta.Session.apply session
      [ Hb_sta.Edit.Scale_delay { instance; factor = 1.05 } ]
  in
  ignore
    (Hb_sta.Session.analyse ~generate_constraints:false ~check_hold:false
       session
     : Hb_sta.Session.report);
  Alcotest.(check int) "delay edit rebuilds exactly one macro"
    (after_first + 1) (read ())

let test_config_directive () =
  let parsed = Hb_sta.Config_format.parse "macro on\n" in
  Alcotest.(check bool) "macro on parses" true parsed.Hb_sta.Config.macro;
  let parsed = Hb_sta.Config_format.parse ~base:parsed "macro off\n" in
  Alcotest.(check bool) "macro off parses" false parsed.Hb_sta.Config.macro;
  let text = Hb_sta.Config_format.to_string macro_config in
  let round = Hb_sta.Config_format.parse text in
  Alcotest.(check bool) "macro survives round trip" true
    round.Hb_sta.Config.macro

(* The scale generator's load-bearing property: inter-stage wiring is a
   bijection, so no cluster ever spans two S-box clouds. Instance names
   encode their cloud ("t2s1b5_g7"); everything before the last '_' is
   the cloud id, and a separated design has exactly one cloud id per
   cluster. *)
let test_scale_cluster_separation () =
  let design, system =
    Hb_workload.Scale.feistel ~name:"sep" ~tiles:3 ~stages:3 ~slow_depth:12 ()
  in
  let ctx = Hb_sta.Context.make ~design ~system () in
  let cloud_of instance =
    let name =
      (Hb_netlist.Design.instance design instance).Hb_netlist.Design.inst_name
    in
    String.sub name 0 (String.rindex name '_')
  in
  Array.iter
    (fun cluster ->
       match cluster.Hb_sta.Cluster.members with
       | [] -> ()
       | first :: rest ->
         let cloud = cloud_of first in
         List.iter
           (fun member ->
              Alcotest.(check string) "cluster stays inside one cloud"
                cloud (cloud_of member))
           rest)
    ctx.Hb_sta.Context.table.Hb_sta.Cluster.clusters

let test_scale10k_smoke () =
  let design, system = Hb_workload.Scale.scale10k () in
  let cells = Hb_netlist.Design.instance_count design in
  Alcotest.(check bool) "scale10k is ~10k cells" true
    (cells > 9_000 && cells < 11_000);
  let macro =
    Hb_sta.Engine.analyse ~design ~system ~config:macro_config
      ~generate_constraints:false ~check_hold:false ()
  in
  let outcome = macro.Hb_sta.Engine.outcome in
  Alcotest.(check bool) "slow pocket makes too-slow paths" true
    (outcome.Hb_sta.Algorithm1.status = Hb_sta.Algorithm1.Slow_paths);
  Alcotest.(check bool) "relaxation is not capped" false
    outcome.Hb_sta.Algorithm1.capped;
  Alcotest.(check bool) "tight period forces many cycles" true
    (outcome.Hb_sta.Algorithm1.forward_cycles
     + outcome.Hb_sta.Algorithm1.backward_cycles
     >= 10)

(* The daemon can build a registered generator in-process and analyse it
   in macro mode. *)
let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_serve_generator () =
  let daemon =
    Hb_sta.Serve.create ~generators:Hb_workload.Catalog.generators ()
  in
  let reply =
    Hb_sta.Serve.handle_line daemon
      {|{"id": 1, "method": "load", "params": {"generator": "figure1", "macro": true}}|}
  in
  Alcotest.(check bool) "generator load succeeds" true
    (contains ~needle:{|"status":"ok"|} reply);
  Alcotest.(check bool) "load reports the generated design" true
    (contains ~needle:"figure1" reply);
  let reply =
    Hb_sta.Serve.handle_line daemon
      {|{"id": 2, "method": "load", "params": {"generator": "no_such"}}|}
  in
  Alcotest.(check bool) "unknown generator is a bad request" true
    (contains ~needle:"bad_request" reply)

let test_rss () =
  match Hb_util.Rss.peak_bytes () with
  | Some bytes ->
    Alcotest.(check bool) "peak RSS is positive" true (bytes > 0)
  | None ->
    Alcotest.(check bool) "procfs absent is acceptable" true
      (not (Sys.file_exists "/proc/self/status"))

let () =
  Alcotest.run "macro"
    [ ("parity",
       [ Alcotest.test_case "element slacks bit-identical" `Quick
           test_slack_parity;
         Alcotest.test_case "worst paths identical" `Quick test_path_parity;
         Alcotest.test_case "rise/fall falls back to flat" `Quick
           test_rise_fall_fallback;
       ]);
      ("invalidation",
       [ Alcotest.test_case "per-cluster macro rebuilds" `Quick
           test_invalidation_granularity;
       ]);
      ("scale",
       [ Alcotest.test_case "clusters never span S-box clouds" `Quick
           test_scale_cluster_separation;
         Alcotest.test_case "scale10k smoke" `Slow test_scale10k_smoke;
         Alcotest.test_case "serve loads by generator name" `Quick
           test_serve_generator;
       ]);
      ("plumbing",
       [ Alcotest.test_case "config directive" `Quick test_config_directive;
         Alcotest.test_case "peak RSS probe" `Quick test_rss;
       ]);
    ]
