(* The incremental + parallel slack engine and its supporting
   infrastructure (domain pool, buffer arena, element version counters).

   The engine's contract is exact: caching and parallelism must be
   bit-for-bit invisible. The properties here therefore compare with
   [Float.compare] equality, not a tolerance. *)

let eq_time x y =
  (* nan = nan (unconstrained nets record nan ready/required times). *)
  Float.compare x y = 0

let eq_array xs ys =
  Array.length xs = Array.length ys && Array.for_all2 eq_time xs ys

let same_slacks (a : Hb_sta.Slacks.t) (b : Hb_sta.Slacks.t) =
  eq_array a.Hb_sta.Slacks.element_input_slack b.Hb_sta.Slacks.element_input_slack
  && eq_array a.Hb_sta.Slacks.element_output_slack
       b.Hb_sta.Slacks.element_output_slack
  && eq_array a.Hb_sta.Slacks.net_slack b.Hb_sta.Slacks.net_slack
  && eq_array a.Hb_sta.Slacks.net_ready b.Hb_sta.Slacks.net_ready
  && eq_array a.Hb_sta.Slacks.net_required b.Hb_sta.Slacks.net_required
  && eq_time a.Hb_sta.Slacks.worst b.Hb_sta.Slacks.worst

let parallel_config =
  { Hb_sta.Config.default with
    Hb_sta.Config.incremental = true;
    parallel_jobs = 3 }

(* ------------------------------------------------------------------ *)
(* Engine parity properties                                           *)
(* ------------------------------------------------------------------ *)

let prop_engine_matches_sequential =
  (* Random soups, random element shift sequences: after every shift the
     incremental+parallel engine, a forced full recompute on the same
     cached context, and a from-scratch sequential context all agree
     exactly. *)
  QCheck.Test.make ~name:"engine: incremental+parallel = sequential" ~count:20
    QCheck.(
      triple (int_range 1 100_000) (int_range 1 4)
        (list_of_size (Gen.int_range 0 12)
           (pair (int_range 0 1_000) (int_range (-80) 80))))
    (fun (seed, phases, shifts) ->
       let design, system =
         Hb_workload.Soup.random ~seed:(Int64.of_int seed) ~phases ()
       in
       let seq_ctx =
         Hb_sta.Context.make ~design ~system ~config:Hb_sta.Config.sequential ()
       in
       let par_ctx =
         Hb_sta.Context.make ~design ~system ~config:parallel_config ()
       in
       let count = Hb_sta.Elements.count seq_ctx.Hb_sta.Context.elements in
       let apply ctx (index, tenths) =
         Hb_sync.Element.shift
           (Hb_sta.Elements.element ctx.Hb_sta.Context.elements (index mod count))
           (float_of_int tenths /. 10.0)
       in
       let agree () =
         let reference = Hb_sta.Slacks.compute seq_ctx in
         let cached = Hb_sta.Slacks.compute par_ctx in
         let forced = Hb_sta.Slacks.compute ~force:true par_ctx in
         same_slacks reference cached && same_slacks reference forced
       in
       agree ()
       && List.for_all
            (fun op -> apply seq_ctx op; apply par_ctx op; agree ())
            shifts)

let prop_algorithm1_matches_sequential =
  (* Full Algorithm 1 runs converge to identical outcomes under both
     engines on random soups. *)
  QCheck.Test.make ~name:"engine: Algorithm 1 outcome unchanged" ~count:20
    QCheck.(pair (int_range 1 100_000) (int_range 1 4))
    (fun (seed, phases) ->
       let design, system =
         Hb_workload.Soup.random ~seed:(Int64.of_int seed) ~phases ()
       in
       let run config =
         let ctx = Hb_sta.Context.make ~design ~system ~config () in
         Hb_sta.Algorithm1.run ctx
       in
       let a = run Hb_sta.Config.sequential in
       let b = run parallel_config in
       a.Hb_sta.Algorithm1.status = b.Hb_sta.Algorithm1.status
       && a.Hb_sta.Algorithm1.forward_cycles = b.Hb_sta.Algorithm1.forward_cycles
       && a.Hb_sta.Algorithm1.backward_cycles
          = b.Hb_sta.Algorithm1.backward_cycles
       && same_slacks a.Hb_sta.Algorithm1.final b.Hb_sta.Algorithm1.final)

(* ------------------------------------------------------------------ *)
(* Table 1 chip regressions                                           *)
(* ------------------------------------------------------------------ *)

let test_chip_regression () =
  List.iter
    (fun (name, make) ->
       let design, system = make () in
       let run config =
         let ctx = Hb_sta.Context.make ~design ~system ~config () in
         Hb_sta.Algorithm1.run ctx
       in
       let reference = run Hb_sta.Config.sequential in
       let engine = run parallel_config in
       Alcotest.(check bool)
         (name ^ ": status") true
         (reference.Hb_sta.Algorithm1.status = engine.Hb_sta.Algorithm1.status);
       Alcotest.(check int)
         (name ^ ": forward cycles")
         reference.Hb_sta.Algorithm1.forward_cycles
         engine.Hb_sta.Algorithm1.forward_cycles;
       Alcotest.(check int)
         (name ^ ": backward cycles")
         reference.Hb_sta.Algorithm1.backward_cycles
         engine.Hb_sta.Algorithm1.backward_cycles;
       Alcotest.(check bool)
         (name ^ ": slacks") true
         (same_slacks reference.Hb_sta.Algorithm1.final
            engine.Hb_sta.Algorithm1.final))
    [ ("DES", fun () -> Hb_workload.Chips.des ());
      ("ALU", fun () -> Hb_workload.Chips.alu ());
      ("SM1F", fun () -> Hb_workload.Chips.sm1f ());
      ("SM1H", fun () -> Hb_workload.Chips.sm1h ());
    ]

let test_update_design_invalidates () =
  (* Rebinding the context to refreshed delays must drop the cache even
     though no element version changed. *)
  let design, system = Hb_workload.Chips.alu () in
  let ctx = Hb_sta.Context.make ~design ~system ~config:parallel_config () in
  let before = Hb_sta.Slacks.compute ctx in
  let rebound =
    Hb_sta.Context.update_design ctx ~design
      ~delays:(Hb_sta.Delays.rc ()) ()
  in
  Alcotest.(check bool) "cache dropped" true
    (rebound.Hb_sta.Context.slack_cache = None);
  let after = Hb_sta.Slacks.compute rebound in
  let forced = Hb_sta.Slacks.compute ~force:true rebound in
  Alcotest.(check bool) "rebound = forced recompute" true
    (same_slacks after forced);
  Alcotest.(check bool) "delays actually moved the slacks" false
    (same_slacks before after)

(* ------------------------------------------------------------------ *)
(* Element versions                                                   *)
(* ------------------------------------------------------------------ *)

let test_element_versions () =
  (* A latch pipeline: transparent latches have a non-degenerate offset
     window, so a small shift is effective (an edge flip-flop's window
     can be a single point, which must NOT bump the version). *)
  let design, system =
    Hb_workload.Pipelines.two_phase ~width:4 ~stages:2 ~gates_per_stage:20 ()
  in
  let ctx = Hb_sta.Context.make ~design ~system () in
  let elements = ctx.Hb_sta.Context.elements in
  let clocked, initial =
    let found = ref None in
    for i = Hb_sta.Elements.count elements - 1 downto 0 do
      let e = Hb_sta.Elements.element elements i in
      if not (Hb_sync.Element.is_boundary e) then begin
        let before = Hb_sync.Element.o_dz e in
        Hb_sync.Element.shift e (-0.5);
        if Hb_sync.Element.o_dz e = before then Hb_sync.Element.shift e 0.5;
        if Hb_sync.Element.o_dz e <> before then found := Some (e, before)
        else Hb_sync.Element.reset e
      end
    done;
    match !found with
    | Some pair -> pair
    | None -> Alcotest.fail "no element with a movable offset"
  in
  let v0 = Hb_sync.Element.version clocked in
  (* Halfway back toward the initial offset: both endpoints are attainable
     values of the (convex) window, so the shift is guaranteed effective. *)
  Hb_sync.Element.shift clocked ((initial -. Hb_sync.Element.o_dz clocked) /. 2.0);
  Alcotest.(check bool) "effective shift bumps" true
    (Hb_sync.Element.version clocked > v0);
  let v1 = Hb_sync.Element.version clocked in
  Hb_sync.Element.shift clocked 0.0;
  Alcotest.(check int) "zero shift is free" v1 (Hb_sync.Element.version clocked);
  Hb_sync.Element.reset clocked;
  Alcotest.(check bool) "reset to a different offset bumps" true
    (Hb_sync.Element.version clocked > v1);
  let boundary = Hb_sta.Elements.element elements 0 in
  if Hb_sync.Element.is_boundary boundary then begin
    let vb = Hb_sync.Element.version boundary in
    Hb_sync.Element.shift boundary 1.0;
    Alcotest.(check int) "boundary never moves" vb
      (Hb_sync.Element.version boundary)
  end

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let test_pool_covers_all_indices () =
  let pool = Hb_util.Pool.create ~jobs:3 () in
  Fun.protect ~finally:(fun () -> Hb_util.Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "jobs" 3 (Hb_util.Pool.jobs pool);
  let n = 1000 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Hb_util.Pool.run pool ~count:n (fun i -> Atomic.incr hits.(i));
  Alcotest.(check bool) "every index exactly once" true
    (Array.for_all (fun a -> Atomic.get a = 1) hits);
  (* The pool is reusable across runs, including empty and single runs. *)
  Hb_util.Pool.run pool ~count:0 (fun _ -> Alcotest.fail "count=0 ran work");
  let solo = ref 0 in
  Hb_util.Pool.run pool ~count:1 (fun _ -> incr solo);
  Alcotest.(check int) "count=1 runs inline" 1 !solo;
  let again = Atomic.make 0 in
  Hb_util.Pool.run pool ~count:100 (fun _ -> Atomic.incr again);
  Alcotest.(check int) "second batch" 100 (Atomic.get again)

let test_pool_propagates_exceptions () =
  let pool = Hb_util.Pool.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Hb_util.Pool.shutdown pool) @@ fun () ->
  let raised =
    try
      Hb_util.Pool.run pool ~count:50 (fun i ->
          if i = 25 then failwith "boom");
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "worker exception re-raised" true raised;
  (* The pool survives a failed run. *)
  let ok = Atomic.make 0 in
  Hb_util.Pool.run pool ~count:10 (fun _ -> Atomic.incr ok);
  Alcotest.(check int) "usable after failure" 10 (Atomic.get ok)

let test_pool_sequential () =
  let pool = Hb_util.Pool.create ~jobs:1 () in
  Fun.protect ~finally:(fun () -> Hb_util.Pool.shutdown pool) @@ fun () ->
  (* jobs=1 must run inline, in order, on the calling domain. *)
  let self = Domain.self () in
  let order = ref [] in
  Hb_util.Pool.run pool ~count:5 (fun i ->
      Alcotest.(check bool) "same domain" true (Domain.self () = self);
      order := i :: !order);
  Alcotest.(check (list int)) "in order" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_pool_shared () =
  let a = Hb_util.Pool.shared ~jobs:2 in
  let b = Hb_util.Pool.shared ~jobs:2 in
  Alcotest.(check bool) "same jobs reuses the pool" true (a == b);
  Alcotest.(check int) "shared size" 2 (Hb_util.Pool.jobs a);
  let resized = Hb_util.Pool.shared ~jobs:3 in
  Alcotest.(check int) "resized" 3 (Hb_util.Pool.jobs resized)

(* ------------------------------------------------------------------ *)
(* Arena                                                              *)
(* ------------------------------------------------------------------ *)

let test_arena_recycles () =
  let arena = Hb_util.Arena.create () in
  let first = Hb_util.Arena.floats arena 64 in
  Alcotest.(check int) "length" 64 (Array.length first);
  Alcotest.(check int) "one outstanding" 1 (Hb_util.Arena.outstanding arena);
  Hb_util.Arena.release arena first;
  Alcotest.(check int) "none outstanding" 0 (Hb_util.Arena.outstanding arena);
  let second = Hb_util.Arena.floats arena 64 in
  Alcotest.(check bool) "same buffer returned" true (first == second);
  let other = Hb_util.Arena.floats arena 32 in
  Alcotest.(check bool) "different length is a fresh buffer" true
    (Array.length other = 32 && not (Obj.repr other == Obj.repr second));
  Hb_util.Arena.release arena second;
  Hb_util.Arena.clear arena;
  let third = Hb_util.Arena.floats arena 64 in
  Alcotest.(check bool) "clear drops the free list" true (not (third == second))

let () =
  Alcotest.run "perf"
    [ ( "engine",
        [ QCheck_alcotest.to_alcotest prop_engine_matches_sequential;
          QCheck_alcotest.to_alcotest prop_algorithm1_matches_sequential;
          Alcotest.test_case "Table 1 chips: outcome unchanged" `Quick
            test_chip_regression;
          Alcotest.test_case "update_design invalidates the cache" `Quick
            test_update_design_invalidates;
          Alcotest.test_case "element version counters" `Quick
            test_element_versions;
        ] );
      ( "pool",
        [ Alcotest.test_case "covers all indices" `Quick
            test_pool_covers_all_indices;
          Alcotest.test_case "propagates exceptions" `Quick
            test_pool_propagates_exceptions;
          Alcotest.test_case "jobs=1 is inline" `Quick test_pool_sequential;
          Alcotest.test_case "shared pool" `Quick test_pool_shared;
        ] );
      ( "arena",
        [ Alcotest.test_case "recycles buffers" `Quick test_arena_recycles ] );
    ]
