(* Tests for hb_clock: waveforms, edge enumeration, the .hbc format and the
   break-open machinery of Section 7, including the paper's Figure 4
   worked example. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Waveform                                                           *)
(* ------------------------------------------------------------------ *)

let test_waveform_edges () =
  let w = Hb_clock.Waveform.make ~name:"c" ~multiplier:2 ~rise:5.0 ~width:10.0 in
  check_float "own period" 50.0 (Hb_clock.Waveform.own_period w ~overall_period:100.0);
  check_float "lead 0" 5.0 (Hb_clock.Waveform.leading_edge w ~overall_period:100.0 ~pulse:0);
  check_float "trail 0" 15.0 (Hb_clock.Waveform.trailing_edge w ~overall_period:100.0 ~pulse:0);
  check_float "lead 1" 55.0 (Hb_clock.Waveform.leading_edge w ~overall_period:100.0 ~pulse:1)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_waveform_validation () =
  expect_invalid "multiplier 0" (fun () ->
      Hb_clock.Waveform.make ~name:"c" ~multiplier:0 ~rise:0.0 ~width:1.0);
  expect_invalid "negative rise" (fun () ->
      Hb_clock.Waveform.make ~name:"c" ~multiplier:1 ~rise:(-1.0) ~width:1.0);
  expect_invalid "zero width" (fun () ->
      Hb_clock.Waveform.make ~name:"c" ~multiplier:1 ~rise:0.0 ~width:0.0);
  let too_wide = Hb_clock.Waveform.make ~name:"c" ~multiplier:2 ~rise:10.0 ~width:45.0 in
  expect_invalid "pulse does not fit" (fun () ->
      Hb_clock.Waveform.check too_wide ~overall_period:100.0);
  expect_invalid "pulse out of range" (fun () ->
      Hb_clock.Waveform.leading_edge too_wide ~overall_period:100.0 ~pulse:2)

(* ------------------------------------------------------------------ *)
(* System                                                             *)
(* ------------------------------------------------------------------ *)

let two_phase () =
  Hb_clock.System.make ~overall_period:100.0
    [ Hb_clock.Waveform.make ~name:"phi1" ~multiplier:1 ~rise:0.0 ~width:40.0;
      Hb_clock.Waveform.make ~name:"phi2" ~multiplier:1 ~rise:50.0 ~width:40.0 ]

let test_system_edges_sorted () =
  let edges = Hb_clock.System.edges (two_phase ()) in
  Alcotest.(check int) "edge count" 4 (Array.length edges);
  let times = Array.map snd edges in
  Alcotest.(check (array (float 1e-9))) "sorted times"
    [| 0.0; 40.0; 50.0; 90.0 |] times

let test_system_edge_time () =
  let s = two_phase () in
  check_float "phi2 trailing" 90.0
    (Hb_clock.System.edge_time s (Hb_clock.Edge.trailing ~clock:"phi2" ~pulse:0));
  Alcotest.check_raises "unknown clock" Not_found (fun () ->
      ignore
        (Hb_clock.System.edge_time s (Hb_clock.Edge.leading ~clock:"zz" ~pulse:0)))

let test_system_validation () =
  expect_invalid "duplicate names" (fun () ->
      Hb_clock.System.make ~overall_period:100.0
        [ Hb_clock.Waveform.make ~name:"c" ~multiplier:1 ~rise:0.0 ~width:10.0;
          Hb_clock.Waveform.make ~name:"c" ~multiplier:1 ~rise:20.0 ~width:10.0 ]);
  expect_invalid "non-positive period" (fun () ->
      Hb_clock.System.make ~overall_period:0.0 [])

let test_multirate_edge_count () =
  let s =
    Hb_clock.System.make ~overall_period:100.0
      [ Hb_clock.Waveform.make ~name:"fast" ~multiplier:4 ~rise:0.0 ~width:10.0 ]
  in
  Alcotest.(check int) "4 pulses -> 8 edges" 8
    (Array.length (Hb_clock.System.edges s))

let test_hbc_round_trip () =
  let s = two_phase () in
  let text = Hb_clock.System.to_string s in
  let s2 = Hb_clock.System.parse text in
  Alcotest.(check string) "round trip" text (Hb_clock.System.to_string s2)

let test_hbc_parse () =
  let s =
    Hb_clock.System.parse
      "# comment\nperiod 80\nclock a multiplier 2 rise 0 width 10\n"
  in
  check_float "period" 80.0 s.Hb_clock.System.overall_period;
  Alcotest.(check int) "one waveform" 1 (List.length s.Hb_clock.System.waveforms)

let expect_parse_failure text =
  match Hb_clock.System.parse text with
  | exception Hb_clock.System.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse failure"

let test_hbc_errors () =
  expect_parse_failure "clock a multiplier 1 rise 0 width 10\n";
  expect_parse_failure "period 100\nperiod 50\n";
  expect_parse_failure "period 100\nclock a multiplier x rise 0 width 1\n";
  expect_parse_failure "period 100\nbogus\n";
  expect_parse_failure "period 100\nclock a multiplier 1 rise 0 width 200\n"

let test_with_overall_period () =
  let s = two_phase () in
  let slower = Hb_clock.System.with_overall_period s 200.0 in
  check_float "stretched" 200.0 slower.Hb_clock.System.overall_period;
  (* Shrinking below the pulse extents must be rejected. *)
  expect_invalid "too small" (fun () ->
      Hb_clock.System.with_overall_period s 80.0)

(* ------------------------------------------------------------------ *)
(* Break-open                                                         *)
(* ------------------------------------------------------------------ *)

let test_position () =
  (* 4 nodes; cutting arc 3 (between 3 and 0) keeps natural order. *)
  List.iteri
    (fun i expected ->
       Alcotest.(check int) (Printf.sprintf "pos %d" i) expected
         (Hb_clock.Break.position ~node_count:4 ~cut:3 i))
    [ 0; 1; 2; 3 ];
  (* Cutting arc 1 starts the order at node 2. *)
  List.iteri
    (fun i expected ->
       Alcotest.(check int) (Printf.sprintf "pos %d" i) expected
         (Hb_clock.Break.position ~node_count:4 ~cut:1 i))
    [ 2; 3; 0; 1 ]

let test_satisfies () =
  let req = { Hb_clock.Break.before = 2; after = 0 } in
  (* Node 2 before node 0 requires the cut in (0, 2]: arcs 0 and 1. *)
  Alcotest.(check bool) "cut 0" true
    (Hb_clock.Break.satisfies ~node_count:4 ~cut:0 req);
  Alcotest.(check bool) "cut 1" true
    (Hb_clock.Break.satisfies ~node_count:4 ~cut:1 req);
  Alcotest.(check bool) "cut 2" false
    (Hb_clock.Break.satisfies ~node_count:4 ~cut:2 req);
  Alcotest.(check bool) "cut 3" false
    (Hb_clock.Break.satisfies ~node_count:4 ~cut:3 req);
  Alcotest.(check bool) "self requirement" false
    (Hb_clock.Break.satisfies ~node_count:4 ~cut:0
       { Hb_clock.Break.before = 1; after = 1 })

let test_solve_trivial () =
  Alcotest.(check (list int)) "no requirements" [ 7 ]
    (Hb_clock.Break.solve ~node_count:8 []);
  expect_invalid "self requirement rejected" (fun () ->
      Hb_clock.Break.solve ~node_count:4
        [ { Hb_clock.Break.before = 1; after = 1 } ]);
  expect_invalid "bad node" (fun () ->
      Hb_clock.Break.solve ~node_count:4
        [ { Hb_clock.Break.before = 0; after = 9 } ])

(* The paper's Figure 4 example: edges A..H in circular order (nodes
   0..7); the requirement "E before C" is satisfied by removing arc D->E
   (arc 3), giving the order E F G H A B C D. *)
let test_figure4_example () =
  let node = function
    | "A" -> 0 | "B" -> 1 | "C" -> 2 | "D" -> 3
    | "E" -> 4 | "F" -> 5 | "G" -> 6 | "H" -> 7
    | _ -> Alcotest.fail "bad label"
  in
  let req = { Hb_clock.Break.before = node "E"; after = node "C" } in
  Alcotest.(check bool) "arc D->E satisfies" true
    (Hb_clock.Break.satisfies ~node_count:8 ~cut:(node "D") req);
  (* The linear order after cutting D->E is E F G H A B C D. *)
  let order =
    List.sort
      (fun a b ->
         compare
           (Hb_clock.Break.position ~node_count:8 ~cut:(node "D") (node a))
           (Hb_clock.Break.position ~node_count:8 ~cut:(node "D") (node b)))
      [ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" ]
  in
  Alcotest.(check (list string)) "order"
    [ "E"; "F"; "G"; "H"; "A"; "B"; "C"; "D" ] order;
  (* One cut suffices for this requirement. *)
  Alcotest.(check int) "single pass" 1
    (List.length (Hb_clock.Break.solve ~node_count:8 [ req ]))

let test_solve_two_cuts_needed () =
  (* Figure 1 shape: all of nodes 0,2,4,6 must precede node 3 and node 7
     (assertions at even positions, closures at odd). One cut cannot place
     0,2,4,6 before 3 and also before 7. *)
  let reqs =
    List.concat_map
      (fun a ->
         [ { Hb_clock.Break.before = a; after = 3 };
           { Hb_clock.Break.before = a; after = 7 } ])
      [ 0; 2; 4; 6 ]
  in
  let cuts = Hb_clock.Break.solve ~node_count:8 reqs in
  Alcotest.(check int) "two passes" 2 (List.length cuts);
  (* Every requirement is satisfied by some chosen cut. *)
  List.iter
    (fun req ->
       Alcotest.(check bool) "covered" true
         (List.exists
            (fun cut -> Hb_clock.Break.satisfies ~node_count:8 ~cut req)
            cuts))
    reqs

let test_assign_picks_latest () =
  (* With cuts after nodes 1 and 5, node 2 sits closest to the end under
     the cut at 1... positions: cut 1 -> order 2 3 4 5 6 7 0 1. *)
  let cut = Hb_clock.Break.assign ~node_count:8 ~cuts:[ 1; 5 ] 5 in
  Alcotest.(check int) "node 5 assigned to cut 5" 5 cut;
  let cut2 = Hb_clock.Break.assign ~node_count:8 ~cuts:[ 1; 5 ] 1 in
  Alcotest.(check int) "node 1 assigned to cut 1" 1 cut2;
  expect_invalid "empty cuts" (fun () ->
      ignore (Hb_clock.Break.assign ~node_count:8 ~cuts:[] 0))

(* Brute-force minimal hitting set for cross-checking. *)
let brute_force_minimum ~node_count reqs =
  let satisfied cuts =
    List.for_all
      (fun req ->
         List.exists
           (fun cut -> Hb_clock.Break.satisfies ~node_count ~cut req)
           cuts)
      reqs
  in
  let rec subsets_of_size k from =
    if k = 0 then [ [] ]
    else if from >= node_count then []
    else
      List.map (fun s -> from :: s) (subsets_of_size (k - 1) (from + 1))
      @ subsets_of_size k (from + 1)
  in
  let rec search k =
    if k > node_count then node_count
    else if List.exists satisfied (subsets_of_size k 0) then k
    else search (k + 1)
  in
  search 1

let prop_solve_covers_and_is_minimal =
  QCheck.Test.make ~name:"Break.solve covers all requirements minimally"
    ~count:200
    QCheck.(pair (int_range 2 8) (small_list (pair (int_range 0 7) (int_range 0 7))))
    (fun (node_count, raw) ->
       let reqs =
         List.filter_map
           (fun (a, b) ->
              let a = a mod node_count and b = b mod node_count in
              if a = b then None else Some { Hb_clock.Break.before = a; after = b })
           raw
       in
       let cuts = Hb_clock.Break.solve ~node_count reqs in
       let covered =
         List.for_all
           (fun req ->
              List.exists
                (fun cut -> Hb_clock.Break.satisfies ~node_count ~cut req)
                cuts)
           reqs
       in
       let minimal =
         reqs = [] || List.length cuts = brute_force_minimum ~node_count reqs
       in
       covered && minimal)

(* The seed's exhaustive solver — enumerate subsets of each size in
   lexicographic order, return the first that satisfies everything — kept
   here verbatim as the reference the branch-and-bound rewrite must
   reproduce exactly (same cuts, same order, not just same cardinality). *)
let exhaustive_solve ~node_count reqs =
  if reqs = [] then [ node_count - 1 ]
  else begin
    let satisfied cuts =
      List.for_all
        (fun req ->
           List.exists
             (fun cut -> Hb_clock.Break.satisfies ~node_count ~cut req)
             cuts)
        reqs
    in
    let rec subsets_of_size k from =
      if k = 0 then [ [] ]
      else if from >= node_count then []
      else
        List.map (fun s -> from :: s) (subsets_of_size (k - 1) (from + 1))
        @ subsets_of_size k (from + 1)
    in
    let rec search k =
      if k > node_count then Alcotest.fail "unsatisfiable requirement set"
      else
        match List.find_opt satisfied (subsets_of_size k 0) with
        | Some cuts -> cuts
        | None -> search (k + 1)
    in
    search 1
  end

let prop_solve_matches_exhaustive =
  QCheck.Test.make ~name:"Break.solve = exhaustive subset search" ~count:300
    QCheck.(
      pair (int_range 2 9) (small_list (pair (int_range 0 8) (int_range 0 8))))
    (fun (node_count, raw) ->
       let reqs =
         List.filter_map
           (fun (a, b) ->
              let a = a mod node_count and b = b mod node_count in
              if a = b then None
              else Some { Hb_clock.Break.before = a; after = b })
           raw
       in
       Hb_clock.Break.solve ~node_count reqs = exhaustive_solve ~node_count reqs)

let prop_position_is_permutation =
  QCheck.Test.make ~name:"Break.position is a permutation" ~count:200
    QCheck.(pair (int_range 1 12) (int_range 0 11))
    (fun (node_count, cut) ->
       let cut = cut mod node_count in
       let positions =
         List.init node_count (fun i ->
             Hb_clock.Break.position ~node_count ~cut i)
       in
       List.sort compare positions = List.init node_count (fun i -> i))

(* The workload figure4 system reproduces the A..H labels in circular
   order. *)
let test_workload_figure4_matches () =
  let system, labels = Hb_workload.Figures.figure4_edges () in
  let edges = Hb_clock.System.edges system in
  Alcotest.(check int) "8 edges" 8 (Array.length edges);
  List.iteri
    (fun i (label, edge) ->
       Alcotest.(check bool)
         (Printf.sprintf "label %s at position %d" label i)
         true
         (Hb_clock.Edge.equal (fst edges.(i)) edge))
    labels

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_solve_covers_and_is_minimal; prop_solve_matches_exhaustive;
        prop_position_is_permutation ]
  in
  Alcotest.run "hb_clock"
    [ ("waveform",
       [ Alcotest.test_case "edges" `Quick test_waveform_edges;
         Alcotest.test_case "validation" `Quick test_waveform_validation ]);
      ("system",
       [ Alcotest.test_case "edges sorted" `Quick test_system_edges_sorted;
         Alcotest.test_case "edge time" `Quick test_system_edge_time;
         Alcotest.test_case "validation" `Quick test_system_validation;
         Alcotest.test_case "multirate edges" `Quick test_multirate_edge_count;
         Alcotest.test_case "hbc round trip" `Quick test_hbc_round_trip;
         Alcotest.test_case "hbc parse" `Quick test_hbc_parse;
         Alcotest.test_case "hbc errors" `Quick test_hbc_errors;
         Alcotest.test_case "rescale period" `Quick test_with_overall_period ]);
      ("break",
       [ Alcotest.test_case "position" `Quick test_position;
         Alcotest.test_case "satisfies" `Quick test_satisfies;
         Alcotest.test_case "solve trivial" `Quick test_solve_trivial;
         Alcotest.test_case "figure 4 example" `Quick test_figure4_example;
         Alcotest.test_case "two cuts" `Quick test_solve_two_cuts_needed;
         Alcotest.test_case "assign" `Quick test_assign_picks_latest;
         Alcotest.test_case "workload figure4" `Quick test_workload_figure4_matches ]);
      ("properties", qsuite);
    ]
