(* The telemetry plane end to end: a real TCP client against
   Hb_util.Httpd and Hb_sta.Monitor, plus the queue-wait / service-time
   split the monitor exports. Servers bind port 0 so parallel test
   runners never collide. *)

module Httpd = Hb_util.Httpd
module Telemetry = Hb_util.Telemetry
module Serve = Hb_sta.Serve
module Monitor = Hb_sta.Monitor
module Json = Hb_util.Json

let find_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i =
    if i + n > h then None
    else if String.sub haystack i n = needle then Some i
    else scan (i + 1)
  in
  if n = 0 then Some 0 else scan 0

(* A deliberately naive HTTP/1.0-style client: one request, read to
   EOF, split head from body. Naive is the point — it must match what
   curl and a Prometheus scraper minimally do. *)
let http_request ~port ~meth path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let request =
        Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\n\r\n" meth path
      in
      let _ = Unix.write_substring fd request 0 (String.length request) in
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let head_end =
        match find_sub raw "\r\n\r\n" with
        | Some i -> i
        | None -> Alcotest.failf "no header terminator in reply: %S" raw
      in
      let head = String.sub raw 0 head_end in
      let body =
        String.sub raw (head_end + 4) (String.length raw - head_end - 4)
      in
      let status =
        match String.split_on_char ' ' head with
        | _http :: code :: _ -> int_of_string code
        | _ -> Alcotest.failf "unparseable status line: %S" head
      in
      (status, head, body))

let http_get ~port path = http_request ~port ~meth:"GET" path

let contains haystack needle =
  find_sub haystack needle <> None

(* --- Httpd alone --------------------------------------------------- *)

let test_httpd_basics () =
  let hits = Atomic.make 0 in
  let server =
    Httpd.start ~port:0
      ~handlers:
        [ ( "/ping",
            fun () ->
              Atomic.incr hits;
              Httpd.response "pong\n" );
          ("/boom", fun () -> failwith "handler exploded") ]
      ()
  in
  Fun.protect
    ~finally:(fun () -> Httpd.stop server)
    (fun () ->
      let port = Httpd.port server in
      if port <= 0 then Alcotest.fail "port 0 must resolve to a real port";
      let status, head, body = http_get ~port "/ping" in
      Alcotest.(check int) "200 on known path" 200 status;
      Alcotest.(check string) "body" "pong\n" body;
      if not (contains head "Content-Length: 5") then
        Alcotest.failf "missing content length: %S" head;
      (* Query strings are stripped before handler lookup. *)
      let status, _, _ = http_get ~port "/ping?debug=1" in
      Alcotest.(check int) "query string stripped" 200 status;
      let status, _, _ = http_get ~port "/nope" in
      Alcotest.(check int) "404 on unknown path" 404 status;
      let status, _, _ = http_request ~port ~meth:"POST" "/ping" in
      Alcotest.(check int) "405 on POST" 405 status;
      (* A handler exception is a 500 reply, and the server survives. *)
      let status, _, _ = http_get ~port "/boom" in
      Alcotest.(check int) "500 on handler exception" 500 status;
      let status, _, _ = http_get ~port "/ping" in
      Alcotest.(check int) "alive after handler exception" 200 status;
      Alcotest.(check int) "handler ran per hit" 3 (Atomic.get hits));
  (* stop is idempotent, and the port is actually released. *)
  Httpd.stop server;
  match http_get ~port:(Httpd.port server) "/ping" with
  | _ -> Alcotest.fail "server still answering after stop"
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
  | exception _ -> ()

(* --- Monitor over a live daemon ------------------------------------ *)

let with_daemon ?(workers = 1) f =
  Telemetry.set_enabled true;
  Telemetry.reset ();
  let daemon =
    Serve.create
      ~generators:
        [ ("des", fun () -> Hb_workload.Chips.des ());
          ( "slow_des",
            fun () ->
              Thread.delay 0.2;
              Hb_workload.Chips.des () ) ]
      ()
  in
  let sched = Serve.start_scheduler daemon ~workers ~queue_capacity:8 in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop_scheduler sched;
      Serve.shutdown_sessions daemon;
      Telemetry.set_enabled false;
      Telemetry.reset ())
    (fun () -> f daemon sched)

let rpc sched client ~id ~meth params =
  let fields =
    [ ("id", Json.Number (float_of_int id)); ("method", Json.String meth) ]
    @ match params with [] -> [] | p -> [ ("params", Json.Obj p) ]
  in
  Serve.submit sched client (Json.to_string (Json.Obj fields))

let test_monitor_endpoints () =
  with_daemon (fun daemon sched ->
      let slo = Serve.Slo.create ~p99_budget_ms:1000.0 () in
      Serve.attach_slo daemon slo;
      let monitor = Monitor.start ~port:0 ~scheduler:sched ~slo
          ~buildinfo:[ ("flavour", "test") ] daemon
      in
      Fun.protect
        ~finally:(fun () -> Monitor.stop monitor)
        (fun () ->
          let port = Monitor.port monitor in
          let client = Serve.client daemon in
          ignore
            (rpc sched client ~id:1 ~meth:"load"
               [ ("generator", Json.String "des") ]);
          ignore (rpc sched client ~id:2 ~meth:"constraints" []);
          Serve.release_client daemon client;
          (* /metrics: Prometheus exposition carrying the runtime
             gauges, the queue-wait histogram and the SLO gauges — the
             acceptance bar of the telemetry plane. *)
          let status, head, body = http_get ~port "/metrics" in
          Alcotest.(check int) "metrics 200" 200 status;
          if not (contains head "text/plain; version=0.0.4") then
            Alcotest.failf "not a prometheus exposition: %S" head;
          List.iter
            (fun metric ->
              if not (contains body metric) then
                Alcotest.failf "/metrics lacks %s" metric)
            [ "hb_runtime_gc_minor_words";
              "hb_runtime_rss_bytes";
              "hb_serve_queue_wait_seconds_bucket";
              "hb_serve_request_seconds_count";
              "hb_slo_window_p99_ms";
              "hb_slo_breached 0" ];
          (* /healthz and /readyz while running. *)
          let status, _, body = http_get ~port "/healthz" in
          Alcotest.(check int) "healthz 200" 200 status;
          Alcotest.(check string) "healthz body" "ok\n" body;
          let status, _, body = http_get ~port "/readyz" in
          Alcotest.(check int) "readyz 200" 200 status;
          Alcotest.(check string) "readyz body" "ready\n" body;
          (* /flight parses and carries the served requests. *)
          let status, _, body = http_get ~port "/flight" in
          Alcotest.(check int) "flight 200" 200 status;
          (match Json.parse body with
           | Json.Obj fields ->
             (match List.assoc_opt "requests" fields with
              | Some (Json.List (_ :: _)) -> ()
              | _ -> Alcotest.fail "flight lacks request summaries")
           | _ -> Alcotest.fail "flight is not a JSON object"
           | exception _ -> Alcotest.failf "flight unparseable: %S" body);
          (* /buildinfo: static identity plus caller pairs. *)
          let status, _, body = http_get ~port "/buildinfo" in
          Alcotest.(check int) "buildinfo 200" 200 status;
          if not (contains body Sys.ocaml_version) then
            Alcotest.fail "buildinfo lacks the OCaml version";
          if not (contains body "flavour") then
            Alcotest.fail "buildinfo lacks caller pairs";
          (* Drain flips readiness, liveness stays green — exactly what
             a load balancer + supervisor pair needs during SIGTERM. *)
          Serve.request_stop daemon;
          let status, _, body = http_get ~port "/readyz" in
          Alcotest.(check int) "readyz 503 during drain" 503 status;
          Alcotest.(check string) "drain body" "draining\n" body;
          let status, _, _ = http_get ~port "/healthz" in
          Alcotest.(check int) "healthz still 200 during drain" 200 status))

let test_queue_wait_split () =
  with_daemon ~workers:1 (fun daemon sched ->
      let slow_client = Serve.client daemon in
      let fast_client = Serve.client daemon in
      (* One worker: a slow load occupies it while the ping queues. *)
      let slow =
        Thread.create
          (fun () ->
            ignore
              (rpc sched slow_client ~id:10 ~meth:"load"
                 [ ("generator", Json.String "slow_des") ]))
          ()
      in
      Thread.delay 0.05;
      ignore (rpc sched fast_client ~id:11 ~meth:"ping" []);
      Thread.join slow;
      Serve.release_client daemon slow_client;
      Serve.release_client daemon fast_client;
      let number fields name =
        match List.assoc_opt name fields with
        | Some (Json.Number v) -> v
        | _ -> Alcotest.failf "summary lacks %s" name
      in
      let summaries =
        match Json.parse (Serve.flight_json daemon) with
        | Json.Obj fields ->
          (match List.assoc_opt "requests" fields with
           | Some (Json.List l) ->
             List.filter_map (function Json.Obj o -> Some o | _ -> None) l
           | _ -> Alcotest.fail "flight lacks requests")
        | _ -> Alcotest.fail "flight is not an object"
      in
      let ping =
        match
          List.find_opt
            (fun o ->
              List.assoc_opt "method" o = Some (Json.String "ping"))
            summaries
        with
        | Some o -> o
        | None -> Alcotest.fail "ping summary missing from flight"
      in
      let queue_ms = number ping "queue_ms" in
      let service_ms = number ping "service_ms" in
      let wall_ms = number ping "wall_ms" in
      (* The worker was busy for ~150ms after the ping queued; a ping's
         service time is microseconds. The split must show that. *)
      if queue_ms < 50.0 then
        Alcotest.failf "ping queue_ms %.1f too small for a busy worker"
          queue_ms;
      if service_ms > 50.0 then
        Alcotest.failf "ping service_ms %.1f should be tiny" service_ms;
      if Float.abs (wall_ms -. (queue_ms +. service_ms)) > 0.5 then
        Alcotest.failf "wall %.3f != queue %.3f + service %.3f" wall_ms
          queue_ms service_ms;
      (* The same split feeds the histogram the bench gates on. *)
      let snap =
        Telemetry.read_histogram
          (Telemetry.histogram "serve.queue_wait_seconds")
      in
      if snap.Telemetry.total < 2 then
        Alcotest.failf "queue-wait histogram saw %d of 2 requests"
          snap.Telemetry.total)

let () =
  Alcotest.run "monitor"
    [ ("httpd", [ Alcotest.test_case "basics" `Quick test_httpd_basics ]);
      ( "monitor",
        [ Alcotest.test_case "endpoints and drain" `Quick
            test_monitor_endpoints ] );
      ( "phase split",
        [ Alcotest.test_case "queue wait vs service" `Quick
            test_queue_wait_split ] ) ]
