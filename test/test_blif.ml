(* Tests for the BLIF reader. *)

let lib = Hb_cell.Library.default ()

let simple_blif =
  "# a small synchronous model\n\
   .model counter\n\
   .inputs din en\n\
   .outputs q\n\
   .names din en d\n\
   11 1\n\
   .latch d q re clock 0\n\
   .end\n"

let test_parse_simple () =
  let d = Hb_netlist.Blif.parse ~library:lib simple_blif in
  Alcotest.(check string) "name" "counter" d.Hb_netlist.Design.design_name;
  (* 1 names macro + 1 latch. *)
  Alcotest.(check int) "instances" 2 (Hb_netlist.Design.instance_count d);
  (* clock promoted to a clock port. *)
  (match Hb_netlist.Design.find_port d "clock" with
   | Some p ->
     Alcotest.(check bool) "clock flagged" true
       (Hb_netlist.Design.port d p).Hb_netlist.Design.is_clock
   | None -> Alcotest.fail "clock port missing");
  (* din/en stay data inputs. *)
  (match Hb_netlist.Design.find_port d "din" with
   | Some p ->
     Alcotest.(check bool) "din not clock" false
       (Hb_netlist.Design.port d p).Hb_netlist.Design.is_clock
   | None -> Alcotest.fail "din missing")

let test_names_macro_shape () =
  let d = Hb_netlist.Blif.parse ~library:lib simple_blif in
  let i =
    match Hb_netlist.Design.find_instance d "blif_n0" with
    | Some i -> Hb_netlist.Design.instance d i
    | None -> Alcotest.fail "names instance missing"
  in
  let cell = i.Hb_netlist.Design.cell in
  Alcotest.(check int) "two inputs" 2 (List.length (Hb_cell.Cell.input_pins cell));
  Alcotest.(check bool) "macro kind" true
    (cell.Hb_cell.Cell.kind = Hb_cell.Kind.Comb (Hb_cell.Kind.Macro 2))

let test_latch_kinds () =
  let text =
    ".model kinds\n\
     .inputs a b c\n\
     .outputs x y z\n\
     .latch a x re ck1 0\n\
     .latch b y ah ck2\n\
     .latch c z al ck2\n\
     .end\n"
  in
  let d = Hb_netlist.Blif.parse ~library:lib text in
  let kind name =
    match Hb_netlist.Design.find_instance d name with
    | Some i ->
      (Hb_netlist.Design.instance d i).Hb_netlist.Design.cell.Hb_cell.Cell.name
    | None -> Alcotest.fail (name ^ " missing")
  in
  Alcotest.(check string) "re -> dff" "dff" (kind "blif_l0");
  Alcotest.(check string) "ah -> latch" "latch" (kind "blif_l1");
  Alcotest.(check string) "al -> latch" "latch" (kind "blif_l2");
  (* The al latch got an explicit control inverter. *)
  Alcotest.(check bool) "control inverter present" true
    (Hb_netlist.Design.find_instance d "blif_ctlinv2" <> None)

let test_gate_directive () =
  let text =
    ".model gates\n\
     .inputs clk i\n\
     .outputs o\n\
     .gate inv_x1 a=i y=t\n\
     .gate buf_x2 a=t y=o\n\
     .end\n"
  in
  let d = Hb_netlist.Blif.parse ~library:lib text in
  Alcotest.(check int) "two gates" 2 (Hb_netlist.Design.instance_count d)

let test_continuation_lines () =
  let text =
    ".model cont\n\
     .inputs a \\\n\
     b\n\
     .outputs o\n\
     .names a b o\n\
     11 1\n\
     .end\n"
  in
  let d = Hb_netlist.Blif.parse ~library:lib text in
  Alcotest.(check bool) "b declared via continuation" true
    (Hb_netlist.Design.find_port d "b" <> None)

let expect_error text =
  match Hb_netlist.Blif.parse ~library:lib text with
  | exception Hb_netlist.Blif.Parse_error _ -> ()
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_blif_errors () =
  expect_error ".model x\n.latch a b\n.end\n";          (* no control *)
  expect_error ".model x\n.latch a b zz ck\n.end\n";    (* bad type *)
  expect_error ".model x\n.bogus\n.end\n";              (* unknown directive *)
  expect_error ".model x\n.names a b o\n111 1\n.end\n"; (* ragged cover *)
  expect_error ".model x\n.inputs a\n";                 (* missing .end *)
  expect_error "11 1\n.end\n"                           (* cover outside names *)

(* Malformed inputs must surface as [Parse_error] with the offending
   line — never as an assertion or an anonymous exception. *)
let expect_error_at ~line:expected ~contains text =
  match Hb_netlist.Blif.parse ~library:lib text with
  | exception Hb_netlist.Blif.Parse_error { line; message } ->
    Alcotest.(check int) ("line of: " ^ contains) expected line;
    let has_fragment =
      let n = String.length contains and h = String.length message in
      let rec scan i =
        i + n <= h && (String.sub message i n = contains || scan (i + 1))
      in
      scan 0
    in
    if not has_fragment then
      Alcotest.fail
        (Printf.sprintf "message %S does not mention %S" message contains)
  | exception e ->
    Alcotest.fail ("expected Parse_error, got " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "expected Parse_error, parse succeeded"

let test_positioned_errors () =
  (* Unknown .latch trigger type: diagnosed at the .latch line. *)
  expect_error_at ~line:3 ~contains:"latch trigger type"
    ".model x\n.inputs a\n.latch a q as ck 0\n.end\n";
  (* Missing .end: diagnosed at the last line of the text. *)
  expect_error_at ~line:3 ~contains:".end"
    ".model x\n.inputs a\n.outputs a\n";
  (* Missing .model: the rest parsed fine, last line blamed. *)
  expect_error_at ~line:5 ~contains:".model"
    ".inputs a\n.outputs o\n.names a o\n1 1\n.end\n";
  (* Cover-row width mismatch: diagnosed at the row. *)
  expect_error_at ~line:3 ~contains:"width"
    ".model x\n.names a b o\n111 1\n.end\n"

let test_blif_analyses_end_to_end () =
  (* A two-stage BLIF design through the whole analyser. *)
  let text =
    ".model pipeline\n\
     .inputs din\n\
     .outputs dout\n\
     .latch d0 q0 re clk 0\n\
     .names din d0\n\
     1 1\n\
     .names q0 t\n\
     0 1\n\
     .latch t q1 re clk 0\n\
     .names q1 dout\n\
     1 1\n\
     .end\n"
  in
  let design = Hb_netlist.Blif.parse ~library:lib text in
  let system =
    Hb_clock.System.make ~overall_period:50.0
      [ Hb_clock.Waveform.make ~name:"clk" ~multiplier:1 ~rise:0.0 ~width:20.0 ]
  in
  let report = Hb_sta.Engine.analyse ~design ~system () in
  Alcotest.(check bool) "meets timing" true
    (report.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.status
     = Hb_sta.Algorithm1.Meets_timing)

let test_constant_names () =
  let text =
    ".model consts\n\
     .outputs o\n\
     .names o\n\
     1\n\
     .end\n"
  in
  let d = Hb_netlist.Blif.parse ~library:lib text in
  Alcotest.(check int) "one constant driver" 1
    (Hb_netlist.Design.instance_count d)

let () =
  Alcotest.run "blif"
    [ ("parse",
       [ Alcotest.test_case "simple" `Quick test_parse_simple;
         Alcotest.test_case "names macro" `Quick test_names_macro_shape;
         Alcotest.test_case "latch kinds" `Quick test_latch_kinds;
         Alcotest.test_case "gate directive" `Quick test_gate_directive;
         Alcotest.test_case "continuations" `Quick test_continuation_lines;
         Alcotest.test_case "errors" `Quick test_blif_errors;
         Alcotest.test_case "positioned errors" `Quick test_positioned_errors;
         Alcotest.test_case "constants" `Quick test_constant_names ]);
      ("integration",
       [ Alcotest.test_case "end to end" `Quick test_blif_analyses_end_to_end ]);
    ]
