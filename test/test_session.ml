(* Session engine semantics: what-if parity against the one-shot engine,
   cache reuse observed through telemetry counters, the serve-loop
   transcript (including malformed requests and timeouts), the unified
   error type, and the util-layer pieces (Json, Timeout) underneath. *)

module Json = Hb_util.Json

(* [Time.equal nan nan] is false; report arrays carry nan for
   unconstrained slots, so parity checks need a nan-aware equality. *)
let time_eq a b =
  Hb_util.Time.equal a b || (Float.is_nan a && Float.is_nan b)

let time = Alcotest.testable Hb_util.Time.pp time_eq

let pipeline ?period () =
  Hb_workload.Pipelines.edge_ff ?period ~width:4 ~stages:3
    ~gates_per_stage:20 ()

(* An instance whose edit genuinely moves timing: prefer one on a worst
   path; when the worst endpoints are direct register-to-register hops
   (common on relaxed designs), fall back to any instance carrying a
   cluster timing arc. *)
let path_instance session =
  let ctx = Hb_sta.Session.context session in
  let design = ctx.Hb_sta.Context.design in
  let name inst =
    (Hb_netlist.Design.instance design inst).Hb_netlist.Design.inst_name
  in
  let on_paths =
    List.find_map
      (fun (path : Hb_sta.Paths.path) ->
         List.find_map
           (fun (hop : Hb_sta.Paths.hop) -> hop.Hb_sta.Paths.via)
           path.Hb_sta.Paths.hops)
      (Hb_sta.Session.worst_paths session ~limit:10)
  in
  match on_paths with
  | Some inst -> name inst
  | None ->
    let clusters = ctx.Hb_sta.Context.table.Hb_sta.Cluster.clusters in
    let arc_inst =
      Array.find_map
        (fun (cluster : Hb_sta.Cluster.t) ->
           if Array.length cluster.Hb_sta.Cluster.arcs > 0 then
             Some cluster.Hb_sta.Cluster.arcs.(0).Hb_sta.Cluster.inst
           else None)
        clusters
    in
    (match arc_inst with
     | Some inst -> name inst
     | None -> Alcotest.fail "design has no timing arcs")

let check_reports_equal label (a : Hb_sta.Engine.report)
    (b : Hb_sta.Engine.report) =
  let sa = a.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.final in
  let sb = b.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.final in
  Alcotest.check time (label ^ ": worst slack") sa.Hb_sta.Slacks.worst
    sb.Hb_sta.Slacks.worst;
  Alcotest.(check bool)
    (label ^ ": status") true
    (a.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.status
     = b.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.status);
  Alcotest.(check int)
    (label ^ ": forward cycles")
    a.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.forward_cycles
    b.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.forward_cycles;
  Alcotest.check
    Alcotest.(array time)
    (label ^ ": element input slacks")
    sa.Hb_sta.Slacks.element_input_slack sb.Hb_sta.Slacks.element_input_slack;
  Alcotest.check
    Alcotest.(array time)
    (label ^ ": net slacks")
    sa.Hb_sta.Slacks.net_slack sb.Hb_sta.Slacks.net_slack;
  Alcotest.(check int)
    (label ^ ": hold violations")
    (List.length a.Hb_sta.Engine.hold_violations)
    (List.length b.Hb_sta.Engine.hold_violations);
  match a.Hb_sta.Engine.constraints, b.Hb_sta.Engine.constraints with
  | Some ca, Some cb ->
    Alcotest.check
      Alcotest.(array time)
      (label ^ ": constraint ready times")
      ca.Hb_sta.Algorithm2.ready cb.Hb_sta.Algorithm2.ready
  | None, None -> ()
  | _ -> Alcotest.fail (label ^ ": constraints presence differs")

(* ------------------------------------------------------------------ *)
(* what-if parity                                                     *)
(* ------------------------------------------------------------------ *)

let test_whatif_scale_parity () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  let instance = path_instance session in
  let _ : Hb_sta.Session.apply_result =
    Hb_sta.Session.apply session
      [ Hb_sta.Edit.Scale_delay { instance; factor = 0.7 } ]
  in
  let via_session = Hb_sta.Session.analyse session in
  let delays =
    Hb_sta.Annotation.apply
      (Hb_sta.Annotation.of_entries
         [ (instance, Hb_sta.Annotation.Scaled 0.7) ])
      ~base:Hb_sta.Delays.lumped
  in
  let fresh = Hb_sta.Engine.analyse ~design ~system ~delays () in
  check_reports_equal "scaled" via_session fresh;
  (* Override the override: a fixed-delay edit replaces the scaling. *)
  let _ : Hb_sta.Session.apply_result =
    Hb_sta.Session.apply session
      [ Hb_sta.Edit.Set_delay { instance; rise = 0.9; fall = 1.1 } ]
  in
  let via_session = Hb_sta.Session.analyse session in
  let delays =
    Hb_sta.Annotation.apply
      (Hb_sta.Annotation.of_entries
         [ (instance, Hb_sta.Annotation.Fixed { rise = 0.9; fall = 1.1 }) ])
      ~base:Hb_sta.Delays.lumped
  in
  let fresh = Hb_sta.Engine.analyse ~design ~system ~delays () in
  check_reports_equal "fixed" via_session fresh;
  Hb_sta.Session.close session

let test_whatif_annotation_parity () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  let instance = path_instance session in
  let text = Printf.sprintf "scale %s 0.6\ndelay ghost rise 1 fall 1" instance in
  let annotation = Hb_sta.Annotation.parse text in
  Alcotest.(check (list string)) "unused names" [ "ghost" ]
    (Hb_sta.Annotation.unused annotation ~design);
  (* [Edit.Annotate] skips unknown entries, matching the legacy call. *)
  let _ : Hb_sta.Session.apply_result =
    Hb_sta.Session.apply session [ Hb_sta.Edit.Annotate annotation ]
  in
  let via_session = Hb_sta.Session.analyse session in
  let fresh =
    Hb_sta.Engine.analyse ~design ~system
      ~delays:(Hb_sta.Annotation.apply annotation ~base:Hb_sta.Delays.lumped)
      ()
  in
  check_reports_equal "annotation" via_session fresh;
  Hb_sta.Session.close session

let test_repeated_queries_stable () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  let first = Hb_sta.Session.analyse session in
  let second = Hb_sta.Session.analyse session in
  check_reports_equal "idempotent" first second;
  let p1 = Hb_sta.Session.worst_paths session ~limit:3 in
  let p2 = Hb_sta.Session.worst_paths session ~limit:3 in
  Alcotest.(check int) "same path count" (List.length p1) (List.length p2);
  List.iter2
    (fun (a : Hb_sta.Paths.path) (b : Hb_sta.Paths.path) ->
       Alcotest.check time "same path slack" a.Hb_sta.Paths.slack
         b.Hb_sta.Paths.slack)
    p1 p2;
  Hb_sta.Session.close session

let test_set_offset_deterministic () =
  let design, system = pipeline ~period:3.0 () in
  let run () =
    let session = Hb_sta.Session.create ~design ~system () in
    let elements = (Hb_sta.Session.context session).Hb_sta.Context.elements in
    (* First adjustable (non-boundary) element. *)
    let element = ref (-1) in
    for e = Hb_sta.Elements.count elements - 1 downto 0 do
      if not (Hb_sync.Element.is_boundary (Hb_sta.Elements.element elements e))
      then element := e
    done;
    if !element < 0 then Alcotest.fail "no adjustable element";
    let _ : Hb_sta.Session.apply_result =
      Hb_sta.Session.apply session
        [ Hb_sta.Edit.Set_offset { element = !element; offset = 0.25 } ]
    in
    let report = Hb_sta.Session.analyse session in
    Hb_sta.Session.close session;
    report
  in
  check_reports_equal "offset edit" (run ()) (run ())

(* The deprecated one-command wrappers must keep behaving exactly like
   the [Edit] batches they delegate to while downstream callers migrate;
   this module is the single place they are still exercised. *)
module Legacy = struct
  [@@@alert "-deprecated"]

  let test_wrappers () =
    let design, system = pipeline ~period:3.0 () in
    let session = Hb_sta.Session.create ~design ~system () in
    let instance = path_instance session in
    Hb_sta.Session.scale_delay session ~instance ~factor:0.7;
    Hb_sta.Session.set_delay session ~instance ~rise:0.9 ~fall:1.1;
    let unused =
      Hb_sta.Session.annotate session (Hb_sta.Annotation.parse "scale ghost 2")
    in
    Alcotest.(check (list string)) "annotate reports unused" [ "ghost" ]
      unused;
    let via_legacy = Hb_sta.Session.analyse session in
    Hb_sta.Session.close session;
    let session = Hb_sta.Session.create ~design ~system () in
    let _ : Hb_sta.Session.apply_result =
      Hb_sta.Session.apply session
        [ Hb_sta.Edit.Scale_delay { instance; factor = 0.7 };
          Hb_sta.Edit.Set_delay { instance; rise = 0.9; fall = 1.1 };
          Hb_sta.Edit.Annotate (Hb_sta.Annotation.parse "scale ghost 2") ]
    in
    let via_apply = Hb_sta.Session.analyse session in
    Hb_sta.Session.close session;
    check_reports_equal "legacy wrappers match apply" via_legacy via_apply
end

(* ------------------------------------------------------------------ *)
(* structural ECO edits                                               *)
(* ------------------------------------------------------------------ *)

let library = Hb_cell.Library.default ()

(* A one-input one-output combinational cell, for buffer insertion. *)
let buffer_cell =
  lazy
    (match
       List.find_opt
         (fun (c : Hb_cell.Cell.t) ->
            Hb_cell.Kind.is_comb c.Hb_cell.Cell.kind
            &&
            match
              ( Hb_cell.Cell.input_pins c,
                Hb_cell.Cell.output_pins c,
                Hb_cell.Cell.control_pins c )
            with
            | [ _ ], [ _ ], [] -> true
            | _ -> false)
         (Hb_cell.Library.cells library)
     with
     | Some c -> c
     | None -> Alcotest.fail "library has no buffer-shaped cell")

(* A worst-path net outside every control cone, by design name. *)
let path_net session =
  let ctx = Hb_sta.Session.context session in
  let design = ctx.Hb_sta.Context.design in
  let control = Hb_sta.Edit.control_nets design in
  let candidate =
    Hb_sta.Session.worst_paths session ~limit:10
    |> List.concat_map (fun (p : Hb_sta.Paths.path) -> p.Hb_sta.Paths.hops)
    |> List.find_opt
         (fun (h : Hb_sta.Paths.hop) ->
            (* [via = Some _] means a combinational driver: insert_buffer
               refuses synchroniser-driven nets. *)
            h.Hb_sta.Paths.via <> None && not control.(h.Hb_sta.Paths.net))
  in
  match candidate with
  | Some h ->
    (Hb_netlist.Design.net design h.Hb_sta.Paths.net).Hb_netlist.Design.net_name
  | None -> Alcotest.fail "no editable net on the worst paths"

(* The ECO acceptance bar: after an [apply], the session's incremental
   re-analysis must be bit-identical to a fresh engine run on the
   session's own post-edit design — cluster surgery may not drift from
   a from-scratch preprocess. *)
let check_structural_parity label session edits =
  let result = Hb_sta.Session.apply session edits in
  Alcotest.(check int)
    (label ^ ": structural commands counted")
    (List.length edits) result.Hb_sta.Session.structural;
  let via_session =
    Hb_sta.Session.analyse ~generate_constraints:true ~check_hold:true session
  in
  let ctx = Hb_sta.Session.context session in
  let fresh =
    Hb_sta.Engine.analyse ~design:ctx.Hb_sta.Context.design
      ~system:ctx.Hb_sta.Context.system ~generate_constraints:true
      ~check_hold:true ()
  in
  check_reports_equal label via_session fresh

let test_eco_insert_buffer () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  let net = path_net session in
  check_structural_parity "insert_buffer" session
    [ Hb_sta.Edit.Insert_buffer
        { net;
          cell = Lazy.force buffer_cell;
          inst_name = None;
          net_name = None;
        } ];
  Hb_sta.Session.close session

let test_eco_resize_gate () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  let instance = path_instance session in
  let cell =
    match Hb_netlist.Design.find_instance design instance with
    | None -> Alcotest.fail "path instance vanished"
    | Some i -> (Hb_netlist.Design.instance design i).Hb_netlist.Design.cell
  in
  let replacement =
    match Hb_cell.Library.upsize library cell with
    | Some c -> c
    | None ->
      (match Hb_cell.Library.downsize library cell with
       | Some c -> c
       | None -> Alcotest.fail "no alternative drive strength in the library")
  in
  check_structural_parity "resize_gate" session
    [ Hb_sta.Edit.Resize_gate { instance; cell = replacement } ];
  Hb_sta.Session.close session

let test_eco_remove_gate () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  let instance = path_instance session in
  check_structural_parity "remove_gate" session
    [ Hb_sta.Edit.Remove_gate { instance } ];
  Hb_sta.Session.close session

let test_eco_rewire_net () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  let d = (Hb_sta.Session.context session).Hb_sta.Context.design in
  let control = Hb_sta.Edit.control_nets d in
  (* Move an input pin of a downstream worst-path gate onto the path's
     source net: strictly upstream, so no cycle can form. *)
  let pick =
    Hb_sta.Session.worst_paths session ~limit:10
    |> List.find_map (fun (p : Hb_sta.Paths.path) ->
        match p.Hb_sta.Paths.hops with
        | first :: rest when not control.(first.Hb_sta.Paths.net) ->
          List.find_map
            (fun (h : Hb_sta.Paths.hop) ->
               match h.Hb_sta.Paths.via with
               | None -> None
               | Some inst ->
                 let record = Hb_netlist.Design.instance d inst in
                 (match
                    Hb_cell.Cell.input_pins record.Hb_netlist.Design.cell
                  with
                  | [] -> None
                  | pin :: _ ->
                    let pin = pin.Hb_cell.Cell.pin_name in
                    (match Hb_netlist.Design.net_of_pin d ~inst ~pin with
                     | Some current when current <> first.Hb_sta.Paths.net ->
                       Some
                         ( record.Hb_netlist.Design.inst_name,
                           pin,
                           (Hb_netlist.Design.net d first.Hb_sta.Paths.net)
                             .Hb_netlist.Design.net_name )
                     | Some _ | None -> None)))
            rest
        | _ -> None)
  in
  (match pick with
   | None -> Alcotest.fail "no rewire candidate on the worst paths"
   | Some (instance, pin, net) ->
     check_structural_parity "rewire_net" session
       [ Hb_sta.Edit.Rewire_net { instance; pin; net } ]);
  Hb_sta.Session.close session

(* A rejected batch is a true no-op: the session answers exactly as it
   did before, and the failing command is named. *)
let test_eco_atomicity () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  let before = Hb_sta.Session.analyse session in
  let instance = path_instance session in
  let batch =
    [ Hb_sta.Edit.Scale_delay { instance; factor = 0.5 };
      Hb_sta.Edit.Insert_buffer
        { net = path_net session;
          cell = Lazy.force buffer_cell;
          inst_name = None;
          net_name = None;
        };
      Hb_sta.Edit.Remove_gate { instance = "no-such-instance" } ]
  in
  (match Hb_sta.Session.apply_r session batch with
   | Ok _ -> Alcotest.fail "batch with an unknown instance must be rejected"
   | Error { Hb_sta.Session.failed_index; error } ->
     Alcotest.(check (option int)) "failing command named" (Some 2)
       failed_index;
     Alcotest.(check string) "structured code" "invalid"
       (Hb_sta.Error.code error));
  let after = Hb_sta.Session.analyse session in
  check_reports_equal "rejected batch is a no-op" before after;
  Hb_sta.Session.close session

let test_eco_control_cone_rejected () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  let control = Hb_sta.Edit.control_nets design in
  let net = ref None in
  Array.iteri
    (fun i marked ->
       if marked && !net = None then
         net :=
           Some (Hb_netlist.Design.net design i).Hb_netlist.Design.net_name)
    control;
  (match !net with
   | None -> Alcotest.fail "pipeline has no control nets"
   | Some net ->
     (match
        Hb_sta.Session.apply_r session
          [ Hb_sta.Edit.Insert_buffer
              { net;
                cell = Lazy.force buffer_cell;
                inst_name = None;
                net_name = None;
              } ]
      with
      | Ok _ -> Alcotest.fail "control-cone edit must be rejected"
      | Error { Hb_sta.Session.error; _ } ->
        Alcotest.(check string) "invalid code" "invalid"
          (Hb_sta.Error.code error)));
  (* Still serviceable. *)
  ignore (Hb_sta.Session.analyse session : Hb_sta.Session.report);
  Hb_sta.Session.close session

(* Rewiring a gate's input onto its own output is a combinational cycle:
   rejected with the dedicated error kind, session untouched. *)
let test_eco_cycle_rejected () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  let before = Hb_sta.Session.analyse session in
  let instance = path_instance session in
  let d = (Hb_sta.Session.context session).Hb_sta.Context.design in
  let inst =
    match Hb_netlist.Design.find_instance d instance with
    | Some i -> i
    | None -> Alcotest.fail "path instance vanished"
  in
  let cell = (Hb_netlist.Design.instance d inst).Hb_netlist.Design.cell in
  let in_pin =
    match Hb_cell.Cell.input_pins cell with
    | p :: _ -> p.Hb_cell.Cell.pin_name
    | [] -> Alcotest.fail "path instance has no input pin"
  in
  let out_net =
    match Hb_cell.Cell.output_pins cell with
    | p :: _ ->
      (match
         Hb_netlist.Design.net_of_pin d ~inst ~pin:p.Hb_cell.Cell.pin_name
       with
       | Some n -> (Hb_netlist.Design.net d n).Hb_netlist.Design.net_name
       | None -> Alcotest.fail "output pin unconnected")
    | [] -> Alcotest.fail "path instance has no output pin"
  in
  (match
     Hb_sta.Session.apply_r session
       [ Hb_sta.Edit.Rewire_net { instance; pin = in_pin; net = out_net } ]
   with
   | Ok _ -> Alcotest.fail "self-loop rewire must be rejected"
   | Error { Hb_sta.Session.error; _ } ->
     Alcotest.(check string) "cycle code" "cycle" (Hb_sta.Error.code error));
  let after = Hb_sta.Session.analyse session in
  check_reports_equal "rejected cycle is a no-op" before after;
  Hb_sta.Session.close session

(* ------------------------------------------------------------------ *)
(* snapshots                                                          *)
(* ------------------------------------------------------------------ *)

let snapshot_designs =
  [ ("des", fun () -> Hb_workload.Chips.des ());
    ("alu", fun () -> Hb_workload.Chips.alu ());
    ("pipeline", fun () -> pipeline ~period:3.0 ()) ]

let test_snapshot_round_trip () =
  List.iter
    (fun (name, make) ->
       let design, system = make () in
       let session = Hb_sta.Session.create ~design ~system () in
       let reference = Hb_sta.Session.analyse session in
       let path = Filename.temp_file "hb_snap" ".hbs" in
       Fun.protect
         ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
         (fun () ->
            Hb_sta.Session.save_snapshot session ~path;
            Hb_sta.Session.close session;
            let restored = Hb_sta.Session.of_snapshot ~path in
            let after = Hb_sta.Session.analyse restored in
            check_reports_equal (name ^ ": snapshot round trip") reference
              after;
            (* The restored session stays live: edits keep working. *)
            let instance = path_instance restored in
            let _ : Hb_sta.Session.apply_result =
              Hb_sta.Session.apply restored
                [ Hb_sta.Edit.Scale_delay { instance; factor = 0.9 } ]
            in
            ignore (Hb_sta.Session.analyse restored : Hb_sta.Session.report);
            Hb_sta.Session.close restored))
    snapshot_designs

let expect_snapshot_error label path =
  match Hb_sta.Session.of_snapshot_r ~path with
  | Ok session ->
    Hb_sta.Session.close session;
    Alcotest.fail (label ^ ": corrupt snapshot restored")
  | Error err ->
    Alcotest.(check bool)
      (label ^ ": structured code (" ^ Hb_sta.Error.code err ^ ")")
      true
      (List.mem (Hb_sta.Error.code err) [ "invalid"; "io" ])

let test_snapshot_corruption () =
  let design, system = pipeline ~period:3.0 () in
  let session = Hb_sta.Session.create ~design ~system () in
  ignore (Hb_sta.Session.analyse session : Hb_sta.Session.report);
  let path = Filename.temp_file "hb_snap" ".hbs" in
  let mutant = Filename.temp_file "hb_snap" ".hbs" in
  Fun.protect
    ~finally:(fun () ->
        List.iter
          (fun p -> if Sys.file_exists p then Sys.remove p)
          [ path; mutant ])
    (fun () ->
       Hb_sta.Session.save_snapshot session ~path;
       Hb_sta.Session.close session;
       let original =
         let ic = open_in_bin path in
         let n = in_channel_length ic in
         let b = really_input_string ic n in
         close_in ic;
         Bytes.of_string b
       in
       let write_mutant bytes =
         let oc = open_out_bin mutant in
         output_bytes oc bytes;
         close_out oc
       in
       let flip bytes i =
         let b = Bytes.copy bytes in
         Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
         b
       in
       (* Sanity: the pristine copy restores. *)
       write_mutant original;
       (match Hb_sta.Session.of_snapshot_r ~path:mutant with
        | Ok s -> Hb_sta.Session.close s
        | Error e ->
          Alcotest.fail ("pristine copy rejected: " ^ Hb_sta.Error.to_string e));
       (* Truncation. *)
       write_mutant (Bytes.sub original 0 (Bytes.length original / 2));
       expect_snapshot_error "truncated" mutant;
       (* A single flipped payload bit. *)
       write_mutant (flip original (Bytes.length original - 1));
       expect_snapshot_error "payload bit flip" mutant;
       (* Format-version and engine-fingerprint mismatches. *)
       write_mutant (flip original Hb_sta.Snapshot.version_offset);
       expect_snapshot_error "version mismatch" mutant;
       write_mutant (flip original Hb_sta.Snapshot.fingerprint_offset);
       expect_snapshot_error "fingerprint mismatch" mutant;
       (* Not a snapshot at all; missing file. *)
       write_mutant (Bytes.of_string "not a snapshot");
       expect_snapshot_error "foreign file" mutant;
       expect_snapshot_error "missing file" (mutant ^ ".does-not-exist"))

let test_session_errors () =
  let design, system = pipeline () in
  let session = Hb_sta.Session.create ~design ~system () in
  let expect_invalid label f =
    match f () with
    | _ -> Alcotest.fail (label ^ ": expected Error.Error")
    | exception Hb_sta.Error.Error (Hb_sta.Error.Invalid _) -> ()
  in
  expect_invalid "unknown instance" (fun () ->
      Hb_sta.Session.apply session
        [ Hb_sta.Edit.Set_delay
            { instance = "no-such-instance"; rise = 1.0; fall = 1.0 } ]);
  expect_invalid "negative delay" (fun () ->
      Hb_sta.Session.apply session
        [ Hb_sta.Edit.Set_delay
            { instance = "whatever"; rise = -1.0; fall = 1.0 } ]);
  expect_invalid "offset out of range" (fun () ->
      Hb_sta.Session.apply session
        [ Hb_sta.Edit.Set_offset { element = 99999; offset = 0.0 } ]);
  (match Hb_sta.Session.analyse_r session with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Hb_sta.Error.to_string e));
  Hb_sta.Session.close session;
  expect_invalid "use after close" (fun () -> Hb_sta.Session.analyse session);
  (* close is idempotent *)
  Hb_sta.Session.close session

(* ------------------------------------------------------------------ *)
(* cache reuse, observed through the telemetry counters               *)
(* ------------------------------------------------------------------ *)

let test_cache_reuse_counters () =
  Hb_util.Telemetry.set_enabled true;
  Hb_util.Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
        Hb_util.Telemetry.set_enabled false;
        Hb_util.Telemetry.reset ())
    (fun () ->
       let counter name =
         let snap = Hb_util.Telemetry.snapshot () in
         Option.value ~default:0
           (List.assoc_opt name snap.Hb_util.Telemetry.counters)
       in
       (* Default period: the pipeline meets timing, so analysis cost is
          dominated by cluster evaluation and the dirty-set accounting is
          deterministic. *)
       let design, system = pipeline () in
       let session = Hb_sta.Session.create ~design ~system () in
       let analyse () =
         ignore
           (Hb_sta.Session.analyse ~generate_constraints:false
              ~check_hold:false session)
       in
       analyse ();
       Alcotest.(check int) "one analysis" 1 (counter "session.analyses");
       let evaluated_full = counter "slacks.clusters_evaluated" in
       Alcotest.(check bool) "first run evaluated clusters" true
         (evaluated_full > 0);
       analyse ();
       analyse ();
       Alcotest.(check int) "still one analysis" 1 (counter "session.analyses");
       Alcotest.(check int) "reuses counted" 2
         (counter "session.report_reuses");
       Alcotest.(check int) "no new cluster evaluations" evaluated_full
         (counter "slacks.clusters_evaluated");
       (* One-instance edit: only the touched clusters are re-evaluated. *)
       let instance = path_instance session in
       let _ : Hb_sta.Session.apply_result =
         Hb_sta.Session.apply session
           [ Hb_sta.Edit.Scale_delay { instance; factor = 0.8 } ]
       in
       Alcotest.(check int) "mutation counted" 1 (counter "session.mutations");
       analyse ();
       Alcotest.(check int) "edit forced a new analysis" 2
         (counter "session.analyses");
       let evaluated_incremental =
         counter "slacks.clusters_evaluated" - evaluated_full
       in
       Alcotest.(check bool) "incremental re-analysis evaluated something"
         true
         (evaluated_incremental > 0);
       Alcotest.(check bool)
         (Printf.sprintf
            "incremental evaluations (%d) below the full sweep (%d)"
            evaluated_incremental evaluated_full)
         true
         (evaluated_incremental < evaluated_full);
       Alcotest.(check bool) "cache hits recorded" true
         (counter "slacks.cluster_cache_hits" > 0);
       Hb_sta.Session.close session)

(* ------------------------------------------------------------------ *)
(* serve loop transcript                                              *)
(* ------------------------------------------------------------------ *)

let write_workload_files () =
  let design, system = pipeline ~period:3.0 () in
  let hbn = Filename.temp_file "hb_session" ".hbn" in
  Hb_netlist.Hbn_format.write_file design hbn;
  let hbc = Filename.temp_file "hb_session" ".hbc" in
  let oc = open_out hbc in
  output_string oc (Hb_clock.System.to_string system);
  close_out oc;
  (hbn, hbc)

let reply_status reply =
  match Json.member "status" (Json.parse reply) with
  | Some (Json.String s) -> s
  | _ -> Alcotest.fail ("reply without status: " ^ reply)

let reply_error_code reply =
  match Json.member "error" (Json.parse reply) with
  | Some error ->
    (match Json.member "code" error with
     | Some (Json.String code) -> code
     | _ -> Alcotest.fail ("error without code: " ^ reply))
  | None -> Alcotest.fail ("expected an error reply: " ^ reply)

let reply_result reply =
  match Json.member "result" (Json.parse reply) with
  | Some result -> result
  | None -> Alcotest.fail ("expected a result: " ^ reply)

let test_serve_transcript () =
  let hbn, hbc = write_workload_files () in
  Fun.protect
    ~finally:(fun () -> Sys.remove hbn; Sys.remove hbc)
    (fun () ->
       let daemon = Hb_sta.Serve.create () in
       let send line = Hb_sta.Serve.handle_line daemon line in
       (* Every reply is a single line carrying the schema version. *)
       let check_envelope reply =
         Alcotest.(check bool) "single line" false (String.contains reply '\n');
         match Json.member "schema_version" (Json.parse reply) with
         | Some (Json.Number v) ->
           Alcotest.(check int) "schema version"
             Hb_sta.Json_export.schema_version (int_of_float v)
         | _ -> Alcotest.fail "reply without schema_version"
       in
       let ok line =
         let reply = send line in
         check_envelope reply;
         Alcotest.(check string) ("ok: " ^ line) "ok" (reply_status reply);
         reply
       in
       let error ~code line =
         let reply = send line in
         check_envelope reply;
         Alcotest.(check string) ("error: " ^ line) "error"
           (reply_status reply);
         Alcotest.(check string) ("code: " ^ line) code
           (reply_error_code reply);
         reply
       in
       ignore (ok {|{"id":1,"method":"ping"}|});
       (* Malformed JSON, unknown methods, bad schema versions and
          queries before load are structured errors, not crashes. *)
       ignore (error ~code:"bad_request" "this is not json");
       ignore (error ~code:"bad_request" {|{"id":2,"method":"frobnicate"}|});
       ignore (error ~code:"bad_request" {|{"id":3}|});
       ignore
         (error ~code:"schema_version"
            {|{"id":4,"method":"ping","schema_version":99}|});
       ignore (error ~code:"no_design" {|{"id":5,"method":"analyse"}|});
       ignore
         (error ~code:"io"
            {|{"id":6,"method":"load","params":{"netlist":"/nonexistent.hbn","clocks":"/nonexistent.hbc"}}|});
       let load =
         Printf.sprintf
           {|{"id":7,"method":"load","params":{"netlist":"%s","clocks":"%s"}}|}
           hbn hbc
       in
       let loaded = reply_result (ok load) in
       Alcotest.(check bool) "clusters reported" true
         (match Json.member "clusters" loaded with
          | Some (Json.Number n) -> n > 0.0
          | _ -> false);
       let analysed = reply_result (ok {|{"id":8,"method":"analyse"}|}) in
       (match Json.member "verdict" analysed with
        | Some (Json.String ("meets_timing" | "slow_paths")) -> ()
        | _ -> Alcotest.fail "analyse result lacks a verdict");
       (match Json.member "schema_version" analysed with
        | Some (Json.Number v) ->
          Alcotest.(check int) "report schema version"
            Hb_sta.Json_export.schema_version (int_of_float v)
        | _ -> Alcotest.fail "report lacks schema_version");
       ignore (ok {|{"id":9,"method":"paths","params":{"limit":2}}|});
       ignore
         (error ~code:"invalid"
            {|{"id":10,"method":"set_delay","params":{"instance":"ghost","rise":1,"fall":1}}|});
       (* A timed-out request is answered in a structured way and the
          daemon keeps serving the same session afterwards. *)
       ignore
         (error ~code:"timeout"
            {|{"id":11,"method":"sleep","params":{"seconds":10},"timeout":0.2}|});
       ignore (ok {|{"id":12,"method":"analyse"}|});
       ignore (ok {|{"id":13,"method":"metrics"}|});
       Alcotest.(check bool) "not finished before shutdown" false
         (Hb_sta.Serve.finished daemon);
       ignore (ok {|{"id":14,"method":"shutdown"}|});
       Alcotest.(check bool) "finished after shutdown" true
         (Hb_sta.Serve.finished daemon))

let test_serve_run_channel () =
  let hbn, hbc = write_workload_files () in
  Fun.protect
    ~finally:(fun () -> Sys.remove hbn; Sys.remove hbc)
    (fun () ->
       let requests =
         String.concat "\n"
           [ {|{"id":1,"method":"ping"}|};
             Printf.sprintf
               {|{"id":2,"method":"load","params":{"netlist":"%s","clocks":"%s"}}|}
               hbn hbc;
             {|{"id":3,"method":"analyse","params":{"constraints":false,"hold":false}}|};
             {|{"id":4,"method":"shutdown"}|};
             {|{"id":5,"method":"ping"}|} (* after shutdown: must not run *)
           ]
       in
       let in_path = Filename.temp_file "hb_serve" ".in" in
       let out_path = Filename.temp_file "hb_serve" ".out" in
       Fun.protect
         ~finally:(fun () -> Sys.remove in_path; Sys.remove out_path)
         (fun () ->
            let oc = open_out in_path in
            output_string oc requests;
            output_char oc '\n';
            close_out oc;
            let ic = open_in in_path in
            let oc = open_out out_path in
            let daemon = Hb_sta.Serve.create () in
            Hb_sta.Serve.run daemon ic oc;
            close_in ic;
            close_out oc;
            let ic = open_in out_path in
            let lines = ref [] in
            (try
               while true do
                 lines := input_line ic :: !lines
               done
             with End_of_file -> ());
            close_in ic;
            let lines = List.rev !lines in
            Alcotest.(check int) "four replies (none past shutdown)" 4
              (List.length lines);
            List.iter
              (fun reply ->
                 Alcotest.(check string) "all ok" "ok" (reply_status reply))
              lines))

(* One request id, followed end to end: client-supplied ["request_id"]
   must surface in the reply envelope, the [serve.request] access-log
   event, the telemetry spans the request recorded, and — when the
   request fails — the flight-recorder dump. *)
let test_serve_observability () =
  let hbn, hbc = write_workload_files () in
  let events = ref [] in
  let dumps = ref [] in
  Hb_util.Telemetry.set_enabled true;
  Hb_util.Telemetry.reset ();
  Hb_util.Log.reset ();
  Hb_util.Log.set_level Hb_util.Log.Info;
  Hb_util.Log.set_sink (fun e -> events := e :: !events);
  Fun.protect
    ~finally:(fun () ->
        Hb_util.Log.set_level Hb_util.Log.Off;
        Hb_util.Log.set_sink_default ();
        Hb_util.Log.reset ();
        Hb_util.Telemetry.set_enabled false;
        Hb_util.Telemetry.reset ();
        Sys.remove hbn;
        Sys.remove hbc)
    (fun () ->
       let daemon =
         Hb_sta.Serve.create ~dump:(fun doc -> dumps := doc :: !dumps) ()
       in
       let send line = Hb_sta.Serve.handle_line daemon line in
       let reply_rid reply =
         match Json.member "request_id" (Json.parse reply) with
         | Some (Json.String rid) -> rid
         | _ -> Alcotest.fail ("reply without request_id: " ^ reply)
       in
       (* Generated ids when the client sends none. *)
       let ping = send {|{"id":1,"method":"ping"}|} in
       let generated = reply_rid ping in
       Alcotest.(check bool) "generated id shape" true
         (String.length generated > 1 && generated.[0] = 'r');
       ignore
         (send
            (Printf.sprintf
               {|{"id":2,"method":"load","params":{"netlist":"%s","clocks":"%s"}}|}
               hbn hbc));
       let analyse =
         send {|{"id":3,"method":"analyse","request_id":"obs-1"}|}
       in
       Alcotest.(check string) "client id echoed" "obs-1" (reply_rid analyse);
       Alcotest.(check string) "analyse ok" "ok" (reply_status analyse);
       (* Access log: a serve.request event tagged with the same id. *)
       let field name e =
         match List.assoc_opt name e.Hb_util.Log.fields with
         | Some (Hb_util.Log.String s) -> Some s
         | _ -> None
       in
       let access =
         List.find_opt
           (fun e ->
              e.Hb_util.Log.site = "serve.request"
              && field "request_id" e = Some "obs-1")
           !events
       in
       (match access with
        | None -> Alcotest.fail "no serve.request access-log line for obs-1"
        | Some e ->
          Alcotest.(check (option string)) "access log outcome" (Some "ok")
            (field "outcome" e);
          Alcotest.(check (option string)) "access log method"
            (Some "analyse") (field "method" e));
       (* Trace spans recorded while serving obs-1 carry its id. *)
       let spans = (Hb_util.Telemetry.snapshot ()).Hb_util.Telemetry.spans in
       Alcotest.(check bool) "some span tagged with obs-1" true
         (List.exists
            (fun sp -> sp.Hb_util.Telemetry.tag = Some "obs-1")
            spans);
       (* An error reply triggers a flight dump naming the failed request. *)
       Alcotest.(check int) "no dump while healthy" 0 (List.length !dumps);
       let failed =
         send
           {|{"id":4,"method":"scale_delay","request_id":"obs-bad","params":{"instance":"no-such-instance","factor":1.1}}|}
       in
       Alcotest.(check string) "error reply" "error" (reply_status failed);
       Alcotest.(check string) "error echoes id" "obs-bad" (reply_rid failed);
       (match !dumps with
        | [ doc ] ->
          let flight = Json.parse doc in
          let requests =
            match Json.member "requests" flight with
            | Some (Json.List rs) -> rs
            | _ -> Alcotest.fail "flight dump lacks requests"
          in
          let entry rid =
            List.find_opt
              (fun r -> Json.member "request_id" r = Some (Json.String rid))
              requests
          in
          (match entry "obs-bad" with
           | None -> Alcotest.fail "flight dump misses the failing request"
           | Some r ->
             (match Json.member "outcome" r with
              | Some (Json.String "ok") | None ->
                Alcotest.fail "failing request not marked as an error"
              | Some _ -> ()));
          Alcotest.(check bool) "earlier request retained" true
            (entry "obs-1" <> None);
          (match Json.member "log" flight with
           | Some (Json.List _) -> ()
           | _ -> Alcotest.fail "flight dump lacks log events")
        | dumps ->
          Alcotest.fail
            (Printf.sprintf "expected exactly one dump, got %d"
               (List.length dumps)));
       (* Prometheus exposition through the wire. *)
       let metrics =
         send {|{"id":5,"method":"metrics","params":{"format":"prometheus"}}|}
       in
       (match reply_result metrics with
        | Json.String text ->
          Alcotest.(check bool) "request histogram exposed" true
            (let needle = "# TYPE hb_serve_request_seconds histogram" in
             let n = String.length needle and h = String.length text in
             let rec scan i =
               i + n <= h && (String.sub text i n = needle || scan (i + 1))
             in
             scan 0);
          String.split_on_char '\n' text
          |> List.iter (fun line ->
              if line <> "" && not (String.length line > 0 && line.[0] = '#')
              then
                match String.index_opt line ' ' with
                | None ->
                  Alcotest.fail ("exposition line without value: " ^ line)
                | Some i ->
                  let v = String.sub line (i + 1) (String.length line - i - 1)
                  in
                  (match float_of_string_opt v with
                   | Some _ -> ()
                   | None ->
                     Alcotest.fail ("unparseable sample value: " ^ line)))
        | _ -> Alcotest.fail "prometheus metrics result is not a string");
       ignore (send {|{"id":6,"method":"shutdown"}|}))

(* ------------------------------------------------------------------ *)
(* concurrent serve: shared sessions, admission control, drain        *)
(* ------------------------------------------------------------------ *)

let shared_of reply =
  match Json.member "shared" (reply_result reply) with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.fail ("load reply without shared flag: " ^ reply)

let telemetry_counter name =
  let snap = Hb_util.Telemetry.snapshot () in
  match List.assoc_opt name snap.Hb_util.Telemetry.counters with
  | Some v -> v
  | None -> 0

let with_telemetry f =
  Hb_util.Telemetry.reset ();
  Hb_util.Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
        Hb_util.Telemetry.set_enabled false;
        Hb_util.Telemetry.reset ())
    f

let test_serve_shared_session () =
  with_telemetry (fun () ->
      let daemon =
        Hb_sta.Serve.create
          ~generators:[ ("pipe", fun () -> pipeline ~period:3.0 ()) ]
          ()
      in
      let sched =
        Hb_sta.Serve.start_scheduler daemon ~workers:2 ~queue_capacity:8
      in
      let a = Hb_sta.Serve.client daemon in
      let b = Hb_sta.Serve.client daemon in
      let send client line = Hb_sta.Serve.submit sched client line in
      let load = {|{"id":1,"method":"load","params":{"generator":"pipe"}}|} in
      let ra = send a load in
      Alcotest.(check string) "first load ok" "ok" (reply_status ra);
      Alcotest.(check bool) "first load is fresh" false (shared_of ra);
      let rb = send b load in
      Alcotest.(check string) "second load ok" "ok" (reply_status rb);
      Alcotest.(check bool) "second load shares the session" true
        (shared_of rb);
      Alcotest.(check bool) "share counted" true
        (telemetry_counter "serve.sessions_shared" >= 1);
      (* One resident session serves both clients: the second analyse is
         answered from the shared cache, not recomputed. *)
      let q =
        {|{"id":2,"method":"analyse","params":{"constraints":false,"hold":false}}|}
      in
      Alcotest.(check string) "a analyses" "ok" (reply_status (send a q));
      Alcotest.(check string) "b analyses" "ok" (reply_status (send b q));
      Alcotest.(check int) "one analysis for two clients" 1
        (telemetry_counter "session.analyses");
      (* While the scheduler owns the domains, a load asking for its own
         pool parallelism is refused rather than silently raced. *)
      Alcotest.(check string) "jobs>1 rejected under scheduler" "bad_request"
        (reply_error_code
           (send a
              {|{"id":3,"method":"load","params":{"generator":"pipe","jobs":4}}|}));
      Hb_sta.Serve.release_client daemon a;
      Hb_sta.Serve.release_client daemon b;
      Hb_sta.Serve.stop_scheduler sched;
      Hb_sta.Serve.shutdown_sessions daemon)

let test_serve_admission () =
  with_telemetry (fun () ->
      let daemon = Hb_sta.Serve.create () in
      let sched =
        Hb_sta.Serve.start_scheduler daemon ~workers:1 ~queue_capacity:1
      in
      let c1 = Hb_sta.Serve.client daemon in
      let c2 = Hb_sta.Serve.client daemon in
      let c3 = Hb_sta.Serve.client daemon in
      let r1 = ref "" and r2 = ref "" in
      (* Fill the worker with a sleep, then the queue (capacity 1) with
         a second one; the third client must get an immediate
         structured [overloaded], not a stall. *)
      let t1 =
        Thread.create
          (fun () ->
             r1 :=
               Hb_sta.Serve.submit sched c1
                 {|{"id":1,"method":"sleep","params":{"seconds":0.4}}|})
          ()
      in
      Thread.delay 0.1;
      let t2 =
        Thread.create
          (fun () ->
             r2 :=
               Hb_sta.Serve.submit sched c2
                 {|{"id":2,"method":"sleep","params":{"seconds":0.1}}|})
          ()
      in
      Thread.delay 0.1;
      let rejected =
        Hb_sta.Serve.submit sched c3 {|{"id":3,"method":"ping"}|}
      in
      Alcotest.(check string) "rejected is an error" "error"
        (reply_status rejected);
      Alcotest.(check string) "overloaded code" "overloaded"
        (reply_error_code rejected);
      Thread.join t1;
      Thread.join t2;
      Alcotest.(check string) "first sleep served" "ok" (reply_status !r1);
      Alcotest.(check string) "queued sleep served" "ok" (reply_status !r2);
      Alcotest.(check bool) "rejection counted" true
        (telemetry_counter "serve.rejected" >= 1);
      Hb_sta.Serve.stop_scheduler sched;
      Hb_sta.Serve.shutdown_sessions daemon)

let test_serve_drain () =
  let daemon = Hb_sta.Serve.create () in
  let sched =
    Hb_sta.Serve.start_scheduler daemon ~workers:1 ~queue_capacity:4
  in
  let c = Hb_sta.Serve.client daemon in
  Alcotest.(check string) "ping before shutdown" "ok"
    (reply_status (Hb_sta.Serve.submit sched c {|{"id":1,"method":"ping"}|}));
  Alcotest.(check string) "shutdown ok" "ok"
    (reply_status
       (Hb_sta.Serve.submit sched c {|{"id":2,"method":"shutdown"}|}));
  Alcotest.(check bool) "daemon finished" true (Hb_sta.Serve.finished daemon);
  Alcotest.(check string) "late request refused" "shutting_down"
    (reply_error_code
       (Hb_sta.Serve.submit sched c {|{"id":3,"method":"ping"}|}));
  Hb_sta.Serve.stop_scheduler sched;
  Hb_sta.Serve.shutdown_sessions daemon;
  (* The SIGTERM path: request_stop drains exactly like a client-issued
     shutdown. *)
  let daemon = Hb_sta.Serve.create () in
  let sched =
    Hb_sta.Serve.start_scheduler daemon ~workers:1 ~queue_capacity:4
  in
  let c = Hb_sta.Serve.client daemon in
  Hb_sta.Serve.request_stop daemon;
  Alcotest.(check bool) "finished after request_stop" true
    (Hb_sta.Serve.finished daemon);
  Alcotest.(check string) "refused after request_stop" "shutting_down"
    (reply_error_code
       (Hb_sta.Serve.submit sched c {|{"id":4,"method":"ping"}|}));
  Hb_sta.Serve.stop_scheduler sched;
  Hb_sta.Serve.shutdown_sessions daemon

(* Distinct instances carrying timing arcs, for disjoint edit sets. *)
let path_instances session n =
  let ctx = Hb_sta.Session.context session in
  let design = ctx.Hb_sta.Context.design in
  let name inst =
    (Hb_netlist.Design.instance design inst).Hb_netlist.Design.inst_name
  in
  let via =
    Hb_sta.Session.worst_paths session ~limit:50
    |> List.concat_map (fun (p : Hb_sta.Paths.path) -> p.Hb_sta.Paths.hops)
    |> List.filter_map (fun (h : Hb_sta.Paths.hop) -> h.Hb_sta.Paths.via)
  in
  let arcs =
    ctx.Hb_sta.Context.table.Hb_sta.Cluster.clusters
    |> Array.to_list
    |> List.concat_map (fun (cluster : Hb_sta.Cluster.t) ->
        Array.to_list cluster.Hb_sta.Cluster.arcs
        |> List.map (fun arc -> arc.Hb_sta.Cluster.inst))
  in
  let uniq = List.sort_uniq compare (via @ arcs) in
  if List.length uniq < n then
    Alcotest.fail
      (Printf.sprintf "need %d instances with arcs, design has %d" n
         (List.length uniq));
  List.filteri (fun i _ -> i < n) uniq |> List.map name

(* The acceptance bar for shared sessions: interleaved mutations and
   reads from two concurrent clients must leave the session in exactly
   the state the same edits produce serially — the final report
   (everything but the wall-clock timings) compares equal, text for
   text. Disjoint instance sets make the edits commute. *)
let test_serve_concurrent_parity () =
  let design, system = pipeline ~period:3.0 () in
  let probe = Hb_sta.Session.create ~design ~system () in
  let instances = path_instances probe 4 in
  Hb_sta.Session.close probe;
  let edits_a =
    [ (List.nth instances 0, 0.9); (List.nth instances 1, 1.15) ]
  in
  let edits_b =
    [ (List.nth instances 2, 0.8); (List.nth instances 3, 1.2) ]
  in
  let scale i (instance, factor) =
    Printf.sprintf
      {|{"id":%d,"method":"scale_delay","params":{"instance":"%s","factor":%g}}|}
      i instance factor
  in
  let analyse =
    {|{"id":99,"method":"analyse","params":{"constraints":false,"hold":false}}|}
  in
  let final_report send =
    let reply = send analyse in
    Alcotest.(check string) "final analyse ok" "ok" (reply_status reply);
    match reply_result reply with
    | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> k <> "timings") fields)
    | _ -> Alcotest.fail "analyse result is not an object"
  in
  let generators = [ ("pipe", fun () -> pipeline ~period:3.0 ()) ] in
  let load = {|{"id":1,"method":"load","params":{"generator":"pipe"}}|} in
  (* Serial reference: one client applies all four edits, then reads. *)
  let serial =
    let daemon = Hb_sta.Serve.create ~generators () in
    let send line = Hb_sta.Serve.handle_line daemon line in
    Alcotest.(check string) "serial load" "ok" (reply_status (send load));
    List.iteri
      (fun i e ->
         Alcotest.(check string) "serial edit" "ok"
           (reply_status (send (scale (10 + i) e))))
      (edits_a @ edits_b);
    let report = final_report send in
    ignore (send {|{"id":100,"method":"shutdown"}|});
    report
  in
  (* Concurrent: two clients interleave the same edits with reads on
     the shared session behind a two-worker scheduler. *)
  let concurrent =
    let daemon = Hb_sta.Serve.create ~generators () in
    let sched =
      Hb_sta.Serve.start_scheduler daemon ~workers:2 ~queue_capacity:16
    in
    let run edits () =
      let c = Hb_sta.Serve.client daemon in
      Alcotest.(check string) "concurrent load" "ok"
        (reply_status (Hb_sta.Serve.submit sched c load));
      List.iteri
        (fun i e ->
           Alcotest.(check string) "concurrent edit" "ok"
             (reply_status (Hb_sta.Serve.submit sched c (scale (20 + i) e)));
           (* An interleaved read: must be a well-formed ok report no
              matter what the other client has mutated so far. *)
           Alcotest.(check string) "interleaved analyse" "ok"
             (reply_status (Hb_sta.Serve.submit sched c analyse)))
        edits;
      Hb_sta.Serve.release_client daemon c
    in
    let ta = Thread.create (run edits_a) () in
    let tb = Thread.create (run edits_b) () in
    Thread.join ta;
    Thread.join tb;
    let c = Hb_sta.Serve.client daemon in
    Alcotest.(check string) "final load ok" "ok"
      (reply_status (Hb_sta.Serve.submit sched c load));
    let report =
      final_report (fun line -> Hb_sta.Serve.submit sched c line)
    in
    Hb_sta.Serve.release_client daemon c;
    Hb_sta.Serve.stop_scheduler sched;
    Hb_sta.Serve.shutdown_sessions daemon;
    report
  in
  Alcotest.(check string) "concurrent final report equals serial"
    (Json.to_string serial) (Json.to_string concurrent)

(* ------------------------------------------------------------------ *)
(* Error, Timeout, Engine.preprocess, Json                             *)
(* ------------------------------------------------------------------ *)

let test_error_classifier () =
  let check_code label expected exn =
    match Hb_sta.Error.of_exn exn with
    | Some err ->
      Alcotest.(check string) label expected (Hb_sta.Error.code err)
    | None -> Alcotest.fail (label ^ ": not classified")
  in
  check_code "failure" "invalid" (Failure "boom");
  check_code "sys_error" "io" (Sys_error "gone");
  check_code "build" "build" (Hb_sta.Elements.Build_error "b");
  check_code "cycle" "cycle" (Hb_sta.Cluster.Cycle_error "c");
  check_code "pass" "pass" (Hb_sta.Passes.Pass_error "p");
  check_code "timeout" "timeout" (Hb_util.Timeout.Timeout 1.5);
  check_code "parse" "parse"
    (Hb_netlist.Hbn_format.Parse_error { line = 3; message = "bad" });
  Alcotest.(check bool) "unknown exceptions stay unknown" true
    (Hb_sta.Error.of_exn Not_found = None);
  let located =
    Hb_sta.Error.in_file "des.hbn"
      (Hb_sta.Error.Parse { file = None; line = 12; message = "unknown cell" })
  in
  Alcotest.(check string) "file attached"
    "parse error: des.hbn:12: unknown cell"
    (Hb_sta.Error.to_string located);
  (match Hb_sta.Error.wrap (fun () -> 41 + 1) with
   | Ok v -> Alcotest.(check int) "wrap ok" 42 v
   | Error _ -> Alcotest.fail "wrap should succeed");
  (match Hb_sta.Error.wrap (fun () -> failwith "nope") with
   | Ok _ -> Alcotest.fail "wrap should classify"
   | Error err ->
     Alcotest.(check string) "wrap code" "invalid" (Hb_sta.Error.code err))

(* Budgets are deadline-based, polled at pass boundaries: guarded work
   only times out where it calls [Timeout.check], which is what this
   spin loop stands in for. *)
let busy_wait seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  while Unix.gettimeofday () < deadline do
    Hb_util.Timeout.check ();
    ignore (Sys.opaque_identity 0)
  done

let test_timeout_helper () =
  Alcotest.(check int) "fast call unaffected" 7
    (Hb_util.Timeout.with_timeout ~seconds:5.0 (fun () -> 7));
  Alcotest.(check int) "non-positive budget means no limit" 9
    (Hb_util.Timeout.with_timeout ~seconds:0.0 (fun () -> 9));
  (* Unguarded code never times out: check is a no-op with no budget. *)
  Hb_util.Timeout.check ();
  Alcotest.(check bool) "no budget outside a guard" true
    (Hb_util.Timeout.remaining () = None);
  (match
     Hb_util.Timeout.with_timeout ~seconds:0.1 (fun () ->
         busy_wait 10.0;
         "finished")
   with
   | _ -> Alcotest.fail "expected a timeout"
   | exception Hb_util.Timeout.Timeout s ->
     Alcotest.(check bool) "budget carried" true (s = 0.1));
  (* The budget is cleared afterwards: slow work outside the guard is
     safe, and a second guarded call still works. *)
  busy_wait 0.15;
  Alcotest.(check int) "reusable after firing" 3
    (Hb_util.Timeout.with_timeout ~seconds:5.0 (fun () -> 3));
  (* Nesting keeps the tighter deadline: a generous inner budget cannot
     extend a tight outer one, and the outer budget is the one the
     exception reports. *)
  (match
     Hb_util.Timeout.with_timeout ~seconds:0.2 (fun () ->
         Hb_util.Timeout.with_timeout ~seconds:5.0 (fun () ->
             busy_wait 10.0;
             "finished"))
   with
   | _ -> Alcotest.fail "expected the nested call to time out"
   | exception Hb_util.Timeout.Timeout s ->
     Alcotest.(check bool) "outer budget wins" true (s = 0.2));
  Alcotest.(check int) "reusable after nested firing" 4
    (Hb_util.Timeout.with_timeout ~seconds:5.0 (fun () -> 4))

let test_preprocess_shape () =
  let design, system = pipeline () in
  let ctx, timings = Hb_sta.Engine.preprocess ~design ~system () in
  Alcotest.(check bool) "context built" true
    (Hb_sta.Elements.count ctx.Hb_sta.Context.elements > 0);
  Alcotest.(check bool) "preprocess time recorded" true
    (timings.Hb_sta.Engine.preprocess_seconds >= 0.0
     && timings.Hb_sta.Engine.preprocess_wall_seconds >= 0.0);
  Alcotest.check time "no analysis cost" 0.0
    timings.Hb_sta.Engine.analysis_seconds;
  Alcotest.check time "no constraints cost" 0.0
    timings.Hb_sta.Engine.constraints_seconds

let test_json_round_trip () =
  let text =
    {|{"a":[1,2.5,"x",null,true,false],"b":{"nested":"q\"uo\\te"},"n":-0.125}|}
  in
  let value = Json.parse text in
  Alcotest.(check string) "compact round trip" text (Json.to_string value);
  let reparsed = Json.parse (Json.to_string value) in
  Alcotest.(check bool) "stable" true (reparsed = value);
  (match Json.member "n" value with
   | Some (Json.Number n) ->
     Alcotest.(check bool) "number read" true (n = -0.125)
   | _ -> Alcotest.fail "missing member");
  (match Json.parse_result "{\"a\": }" with
   | Ok _ -> Alcotest.fail "should reject"
   | Error _ -> ());
  (match Json.parse_result "[1,2] trailing" with
   | Ok _ -> Alcotest.fail "should reject trailing garbage"
   | Error _ -> ());
  Alcotest.(check string) "unicode escape decodes to utf8"
    {|["é"]|}
    (Json.to_string (Json.parse {|["é"]|}))

let () =
  Alcotest.run "session"
    [ ("parity",
       [ Alcotest.test_case "scale and fixed edits" `Quick
           test_whatif_scale_parity;
         Alcotest.test_case "annotation batch" `Quick
           test_whatif_annotation_parity;
         Alcotest.test_case "repeated queries stable" `Quick
           test_repeated_queries_stable;
         Alcotest.test_case "offset edits deterministic" `Quick
           test_set_offset_deterministic;
         Alcotest.test_case "legacy wrappers" `Quick Legacy.test_wrappers ]);
      ("eco",
       [ Alcotest.test_case "insert buffer" `Quick test_eco_insert_buffer;
         Alcotest.test_case "resize gate" `Quick test_eco_resize_gate;
         Alcotest.test_case "remove gate" `Quick test_eco_remove_gate;
         Alcotest.test_case "rewire net" `Quick test_eco_rewire_net;
         Alcotest.test_case "rejected batch is atomic" `Quick
           test_eco_atomicity;
         Alcotest.test_case "control cone rejected" `Quick
           test_eco_control_cone_rejected;
         Alcotest.test_case "cycle rejected" `Quick test_eco_cycle_rejected ]);
      ("snapshot",
       [ Alcotest.test_case "round trip" `Quick test_snapshot_round_trip;
         Alcotest.test_case "corruption" `Quick test_snapshot_corruption ]);
      ("errors",
       [ Alcotest.test_case "session misuse" `Quick test_session_errors;
         Alcotest.test_case "classifier" `Quick test_error_classifier ]);
      ("cache",
       [ Alcotest.test_case "reuse counters" `Quick test_cache_reuse_counters ]);
      ("serve",
       [ Alcotest.test_case "transcript" `Quick test_serve_transcript;
         Alcotest.test_case "run channel" `Quick test_serve_run_channel;
         Alcotest.test_case "observability" `Quick test_serve_observability ]);
      ("concurrent",
       [ Alcotest.test_case "shared session" `Quick test_serve_shared_session;
         Alcotest.test_case "admission control" `Quick test_serve_admission;
         Alcotest.test_case "graceful drain" `Quick test_serve_drain;
         Alcotest.test_case "parity vs serial" `Quick
           test_serve_concurrent_parity ]);
      ("util",
       [ Alcotest.test_case "timeout helper" `Quick test_timeout_helper;
         Alcotest.test_case "preprocess shape" `Quick test_preprocess_shape;
         Alcotest.test_case "json round trip" `Quick test_json_round_trip ]);
    ]
