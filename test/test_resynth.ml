(* Tests for hb_resynth: the speed-up operator and Algorithm 3. *)

let lib = Hb_cell.Library.default ()

let slow_pipeline () =
  Hb_workload.Pipelines.edge_ff ~period:14.0 ~width:4 ~stages:3
    ~gates_per_stage:25 ()

let test_upsize_applies () =
  let design, _ = slow_pipeline () in
  let comb = Hb_netlist.Design.comb_instances design in
  let target = List.hd comb in
  match Hb_resynth.Speedup.upsize_instances design ~library:lib ~instances:[ target ] with
  | Some (rebuilt, changes) ->
    Alcotest.(check int) "one change" 1 (List.length changes);
    let change = List.hd changes in
    Alcotest.(check bool) "cell name changed" true
      (change.Hb_resynth.Speedup.old_cell <> change.Hb_resynth.Speedup.new_cell);
    Alcotest.(check int) "same instance count"
      (Hb_netlist.Design.instance_count design)
      (Hb_netlist.Design.instance_count rebuilt)
  | None -> Alcotest.fail "expected an upsize"

let test_upsize_none_at_top_drive () =
  (* A design whose only gate is already at the top drive. *)
  let b = Hb_netlist.Builder.create ~name:"top" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"i" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"u" ~cell:"inv_x4"
    ~connections:[ ("a", "i"); ("y", "n") ] ();
  let design = Hb_netlist.Builder.freeze b in
  Alcotest.(check bool) "no upsize possible" true
    (Hb_resynth.Speedup.upsize_instances design ~library:lib ~instances:[ 0 ] = None)

let test_upsize_skips_sync () =
  let design, _ = slow_pipeline () in
  let sync = List.hd (Hb_netlist.Design.sync_instances design) in
  Alcotest.(check bool) "sync instances are not upsized" true
    (Hb_resynth.Speedup.upsize_instances design ~library:lib ~instances:[ sync ] = None)

let test_loop_improves_timing () =
  let design, system = slow_pipeline () in
  let before =
    let ctx = Hb_sta.Context.make ~design ~system () in
    (Hb_sta.Algorithm1.run ctx).Hb_sta.Algorithm1.final.Hb_sta.Slacks.worst
  in
  Alcotest.(check bool) "starts too slow" true (Hb_util.Time.is_negative before);
  let result = Hb_resynth.Loop.optimise ~design ~system ~library:lib () in
  Alcotest.(check bool) "slack improved" true
    (result.Hb_resynth.Loop.final_worst_slack > before);
  Alcotest.(check bool) "history recorded" true
    (List.length result.Hb_resynth.Loop.history >= 1);
  (* Worst slack is non-decreasing through the history. *)
  let slacks =
    List.map (fun s -> s.Hb_resynth.Loop.worst_slack) result.Hb_resynth.Loop.history
    @ [ result.Hb_resynth.Loop.final_worst_slack ]
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "monotone improvement" true (non_decreasing slacks)

let test_loop_trades_area () =
  let design, system = slow_pipeline () in
  let area_before = (Hb_netlist.Stats.compute design).Hb_netlist.Stats.area in
  let result = Hb_resynth.Loop.optimise ~design ~system ~library:lib () in
  if result.Hb_resynth.Loop.met_timing then
    Alcotest.(check bool) "area grew to buy speed" true
      (result.Hb_resynth.Loop.final_area > area_before)

let test_loop_noop_when_fast () =
  let design, system =
    Hb_workload.Pipelines.edge_ff ~period:100.0 ~width:3 ~stages:3
      ~gates_per_stage:10 ()
  in
  let result = Hb_resynth.Loop.optimise ~design ~system ~library:lib () in
  Alcotest.(check bool) "met" true result.Hb_resynth.Loop.met_timing;
  Alcotest.(check int) "no iterations" 0 result.Hb_resynth.Loop.iterations

let test_loop_respects_cap () =
  (* An impossible period: the loop must stop at the cap or when no
     further upsizing is possible, without diverging. *)
  let design, system =
    Hb_workload.Pipelines.edge_ff ~period:3.0 ~width:3 ~stages:3
      ~gates_per_stage:20 ()
  in
  let result =
    Hb_resynth.Loop.optimise ~design ~system ~library:lib ~max_iterations:4 ()
  in
  Alcotest.(check bool) "did not meet impossible timing" true
    (not result.Hb_resynth.Loop.met_timing);
  Alcotest.(check bool) "bounded iterations" true
    (result.Hb_resynth.Loop.iterations <= 4)

(* The QoR journal: every step carries consistent slack aggregates, the
   loop also emits one [resynth.iteration] log line per step, and a met
   run ends with a clean final QoR. *)
let test_qor_journal () =
  let design, system = slow_pipeline () in
  Hb_util.Log.reset ();
  Hb_util.Log.set_level Hb_util.Log.Info;
  let events = ref [] in
  Hb_util.Log.set_sink (fun e -> events := e :: !events);
  let result =
    Fun.protect
      ~finally:(fun () ->
          Hb_util.Log.set_level Hb_util.Log.Off;
          Hb_util.Log.set_sink_default ())
      (fun () -> Hb_resynth.Loop.optimise ~design ~system ~library:lib ())
  in
  let history = result.Hb_resynth.Loop.history in
  Alcotest.(check bool) "journal non-empty" true (List.length history >= 1);
  List.iteri
    (fun i step ->
       let label fmt = Printf.sprintf "step %d: %s" i fmt in
       Alcotest.(check int) (label "iteration numbering") i
         step.Hb_resynth.Loop.iteration;
       Alcotest.(check bool) (label "tns non-positive") true
         (step.Hb_resynth.Loop.total_negative_slack <= 0.0);
       Alcotest.(check bool) (label "slow endpoints count") true
         (step.Hb_resynth.Loop.slow_endpoints >= 0);
       (* Negative slack somewhere implies at least one slow endpoint,
          and vice versa. *)
       Alcotest.(check bool) (label "tns and endpoint count agree") true
         ((step.Hb_resynth.Loop.total_negative_slack < 0.0)
          = (step.Hb_resynth.Loop.slow_endpoints > 0));
       if i = 0 then
         Alcotest.(check (float 0.0)) (label "first delta is zero") 0.0
           step.Hb_resynth.Loop.delta_worst_slack
       else
         Alcotest.(check bool) (label "delta finite") true
           (Float.is_finite step.Hb_resynth.Loop.delta_worst_slack))
    history;
  (* While iterating, the design is slow: every step saw slow endpoints. *)
  (match history with
   | step :: _ ->
     Alcotest.(check bool) "first step sees slow endpoints" true
       (step.Hb_resynth.Loop.slow_endpoints > 0)
   | [] -> ());
  if result.Hb_resynth.Loop.met_timing then begin
    Alcotest.(check int) "met: no slow endpoints left" 0
      result.Hb_resynth.Loop.final_slow_endpoints;
    Alcotest.(check (float 0.0)) "met: tns cleared" 0.0
      result.Hb_resynth.Loop.final_total_negative_slack
  end;
  let journal_lines =
    List.filter (fun e -> e.Hb_util.Log.site = "resynth.iteration") !events
  in
  Alcotest.(check int) "one log line per iteration"
    (List.length history) (List.length journal_lines);
  Hb_util.Log.reset ()

let () =
  Alcotest.run "hb_resynth"
    [ ("speedup",
       [ Alcotest.test_case "applies" `Quick test_upsize_applies;
         Alcotest.test_case "top drive" `Quick test_upsize_none_at_top_drive;
         Alcotest.test_case "skips sync" `Quick test_upsize_skips_sync ]);
      ("loop",
       [ Alcotest.test_case "improves timing" `Quick test_loop_improves_timing;
         Alcotest.test_case "trades area" `Quick test_loop_trades_area;
         Alcotest.test_case "noop when fast" `Quick test_loop_noop_when_fast;
         Alcotest.test_case "respects cap" `Quick test_loop_respects_cap;
         Alcotest.test_case "qor journal" `Quick test_qor_journal ]);
    ]
