(* The paper's Figure 1: logic time-multiplexed by four clock phases.

   Four transparent latches controlled by four different phases feed one
   logic cone whose output is captured by latches on two of the phases.
   The cone's output must settle to two different valid states during each
   overall clock period. The pre-processing stage (Section 7 of the paper)
   breaks the clock period open twice — the minimum — where attributing a
   settling time to every source clock edge would analyse the cone four
   times.

   Run with:  dune exec examples/time_multiplexed.exe *)

let () =
  let design, system = Hb_workload.Figures.figure1 () in
  let report = Hb_sta.Engine.analyse ~design ~system () in
  let ctx = report.Hb_sta.Engine.context in

  print_string (Hb_sta.Report.summary report);
  print_newline ();

  (* Per-cluster pass accounting: the shared cone is the cluster with four
     input terminals. *)
  let settling = Hb_sta.Baseline.settling_times ctx in
  print_endline "cluster        passes(min)  settling-times(per-edge)";
  List.iter
    (fun (id, minimized, naive) ->
       let cluster = ctx.Hb_sta.Context.table.Hb_sta.Cluster.clusters.(id) in
       Printf.printf "cluster %-2d %8d %12d   (%d gates, %d inputs, %d outputs)\n"
         id minimized naive
         (List.length cluster.Hb_sta.Cluster.members)
         (Array.length cluster.Hb_sta.Cluster.inputs)
         (Array.length cluster.Hb_sta.Cluster.outputs))
    settling.Hb_sta.Baseline.per_cluster;
  Printf.printf "total: %d minimum passes vs %d per-edge settling times\n\n"
    settling.Hb_sta.Baseline.minimized_passes
    settling.Hb_sta.Baseline.naive_settling_times;

  (* Show the two passes of the shared cone: which closure is analysed in
     which broken-open order. *)
  let cone =
    let best = ref None in
    Array.iter
      (fun (c : Hb_sta.Cluster.t) ->
         if Array.length c.Hb_sta.Cluster.inputs = 4 then best := Some c)
      ctx.Hb_sta.Context.table.Hb_sta.Cluster.clusters;
    match !best with
    | Some c -> c
    | None -> failwith "cone cluster not found"
  in
  let plan = ctx.Hb_sta.Context.passes.Hb_sta.Passes.plans.(cone.Hb_sta.Cluster.id) in
  Printf.printf "the shared cone (cluster %d) uses %d passes; output assignment:\n"
    cone.Hb_sta.Cluster.id (List.length plan.Hb_sta.Passes.cuts);
  Array.iteri
    (fun i (terminal : Hb_sta.Cluster.terminal) ->
       let element =
         Hb_sta.Elements.element ctx.Hb_sta.Context.elements
           terminal.Hb_sta.Cluster.element
       in
       Printf.printf "  output %d (%s) -> pass at cut %d\n" i
         element.Hb_sync.Element.label plan.Hb_sta.Passes.assignment.(i))
    cone.Hb_sta.Cluster.outputs
