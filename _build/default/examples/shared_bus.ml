(* Clocked tristate drivers on a shared bus, with gated enables.

   Three source registers drive an 8-bit bus through tristate drivers
   whose control pins are the clock ANDed with select lines from another
   register. This exercises three corners of the model at once:

   - multi-driver bus nets (legal only when every driver is a tristate);
   - tristate drivers, which the paper models "in the same way as
     transparent latches";
   - enable paths: the select signals must be stable before the gated
     clock pulse begins, so each driver's control pin becomes an
     analysis endpoint of its own.

   Run with:  dune exec examples/shared_bus.exe *)

let () =
  let design, system = Hb_workload.Buses.shared_bus ~sources:3 ~width:8 () in
  let report = Hb_sta.Engine.analyse ~design ~system () in
  print_string (Hb_sta.Report.summary report);
  print_newline ();

  let ctx = report.Hb_sta.Engine.context in
  let elements = ctx.Hb_sta.Context.elements in

  (* Show the enable endpoints the control tracing created. *)
  print_endline "enable-path endpoints (control pins fed by select logic):";
  for e = 0 to Hb_sta.Elements.count elements - 1 do
    let element = Hb_sta.Elements.element elements e in
    let label = element.Hb_sync.Element.label in
    let is_enable =
      String.length label > 3
      && String.sub label (String.length label - 5) 5 = ".ck#0"
    in
    if is_enable then begin
      let slacks = report.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.final in
      Printf.printf "  %-12s slack %s\n" label
        (Hb_util.Time.to_string
           slacks.Hb_sta.Slacks.element_input_slack.(e))
    end
  done;
  print_newline ();

  (* The bus nets each have three tristate drivers. *)
  (match Hb_netlist.Design.find_net design "bus0" with
   | Some net ->
     Printf.printf "net bus0 has %d tristate drivers\n"
       (List.length (Hb_netlist.Design.net design net).Hb_netlist.Design.drivers)
   | None -> ());

  (* Export the design for graphical inspection (the paper flagged slow
     paths into OCT for the VEM editor; we emit Graphviz). *)
  let slacks = report.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.final in
  let dot = Hb_sta.Dot_export.design_graph ctx slacks in
  Hb_sta.Dot_export.write_file ~path:"/tmp/shared_bus.dot" dot;
  Printf.printf "\ndesign graph written to /tmp/shared_bus.dot (%d bytes)\n"
    (String.length dot)
