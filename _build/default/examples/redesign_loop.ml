(* Algorithm 3: the analysis/re-design loop.

   An edge-triggered pipeline is generated at a clock period it cannot
   meet. Each iteration runs Algorithm 1 to find the slow paths, derives
   module constraints (Algorithm 2's ready/required times), and upsizes
   the cells on the worst critical path — the stand-in for the Singh et
   al. re-synthesis step the paper delegates to. The loop ends when every
   path is fast enough.

   Run with:  dune exec examples/redesign_loop.exe *)

let () =
  let design, system =
    Hb_workload.Pipelines.edge_ff ~period:14.0 ~width:4 ~stages:3
      ~gates_per_stage:25 ()
  in
  let library = Hb_cell.Library.default () in

  (* Show what Algorithm 2 hands to the re-design step on the initial
     design. *)
  let ctx = Hb_sta.Context.make ~design ~system () in
  let _ = Hb_sta.Algorithm1.run ctx in
  let times = Hb_sta.Algorithm2.run ctx in
  print_endline "re-synthesis constraints for the slowest modules:";
  print_string (Hb_sta.Report.constraints_report ctx times ~limit:5);
  print_newline ();

  (* Run the loop. *)
  let result = Hb_resynth.Loop.optimise ~design ~system ~library () in
  print_endline "iteration  worst-slack(ns)  area  cells-upsized";
  List.iter
    (fun (s : Hb_resynth.Loop.step) ->
       Printf.printf "%9d %16.3f %5.0f %14d\n" s.Hb_resynth.Loop.iteration
         s.Hb_resynth.Loop.worst_slack s.Hb_resynth.Loop.area
         (List.length s.Hb_resynth.Loop.changed))
    result.Hb_resynth.Loop.history;
  Printf.printf "final:     %16.3f %5.0f   (timing %s after %d iterations)\n"
    result.Hb_resynth.Loop.final_worst_slack result.Hb_resynth.Loop.final_area
    (if result.Hb_resynth.Loop.met_timing then "met" else "NOT met")
    result.Hb_resynth.Loop.iterations;

  (* Which substitutions were made in the first iteration? *)
  match result.Hb_resynth.Loop.history with
  | first :: _ ->
    print_newline ();
    print_endline "first-iteration substitutions:";
    List.iter
      (fun (c : Hb_resynth.Speedup.change) ->
         Printf.printf "  %-12s %s -> %s\n" c.Hb_resynth.Speedup.inst_name
           c.Hb_resynth.Speedup.old_cell c.Hb_resynth.Speedup.new_cell)
      first.Hb_resynth.Loop.changed
  | [] -> ()
