(* A Berkeley-flow round trip: read a BLIF model (the exchange format of
   the synthesis system the paper's Hummingbird lived in), analyse it,
   prove its critical path false, and re-check with measured delays.

   Run with:  dune exec examples/blif_flow.exe *)

let blif_text =
  {|# a small synchronous BLIF model with a reconvergent false path
.model demo
.inputs din sel
.outputs dout

# select register
.latch sel s re clock 0

# launch register and a head of logic
.latch din q re clock 0
.names q h0
1 1
.names h0 h1
1 1

# nand(h1, s) then nor(m1, s): propagating along the long path would
# need s = 1 and s = 0 at once
.gate nand2_x1 a=h1 b=s y=m0
.names m0 m1
1 1
.gate nor2_x1 a=m1 b=s y=d2

.latch d2 cap re clock 0
.names cap dout
1 1
.end
|}

let () =
  let library = Hb_cell.Library.default () in
  let design = Hb_netlist.Blif.parse ~library blif_text in
  Printf.printf "parsed BLIF model %s: %d instances, %d nets\n"
    design.Hb_netlist.Design.design_name
    (Hb_netlist.Design.instance_count design)
    (Hb_netlist.Design.net_count design);

  let system =
    Hb_clock.System.make ~overall_period:40.0
      [ Hb_clock.Waveform.make ~name:"clock" ~multiplier:1 ~rise:0.0 ~width:16.0 ]
  in
  let report = Hb_sta.Engine.analyse ~design ~system () in
  print_newline ();
  print_string (Hb_sta.Report.summary report);
  print_newline ();

  (* The capture register's worst path traverses both conflict gates. *)
  let ctx = report.Hb_sta.Engine.context in
  let capture =
    match Hb_netlist.Design.find_instance design "blif_l2" with
    | Some i -> i
    | None -> failwith "capture register missing"
  in
  let endpoint =
    List.hd
      (Hashtbl.find ctx.Hb_sta.Context.elements.Hb_sta.Elements.replicas_of_inst
         capture)
  in
  (match Hb_sta.False_paths.refine_endpoint ctx ~endpoint () with
   | Some refined ->
     Printf.printf
       "capture endpoint: block slack %.3f ns; %d of %d examined paths are\n\
        provably false; worst sensitisable slack %s\n"
       refined.Hb_sta.False_paths.block_slack
       refined.Hb_sta.False_paths.false_skipped
       refined.Hb_sta.False_paths.examined
       (match refined.Hb_sta.False_paths.true_slack with
        | Some t -> Printf.sprintf "%.3f ns" t
        | None -> "(none)")
   | None -> print_endline "no constrained paths at the capture register");
  print_newline ();

  (* What-if: back-annotate a measured delay onto one of the .names
     macros and re-analyse. *)
  let annotation =
    Hb_sta.Annotation.parse "delay blif_n2 rise 9.0 fall 8.5\n"
  in
  let delays = Hb_sta.Annotation.apply annotation ~base:Hb_sta.Delays.lumped in
  let slowed = Hb_sta.Engine.analyse ~design ~system ~delays () in
  let endpoint_slack (r : Hb_sta.Engine.report) =
    let ctx = r.Hb_sta.Engine.context in
    let e =
      List.hd
        (Hashtbl.find
           ctx.Hb_sta.Context.elements.Hb_sta.Elements.replicas_of_inst capture)
    in
    r.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.final
      .Hb_sta.Slacks.element_input_slack.(e)
  in
  Printf.printf
    "with a measured 9 ns delay on blif_n2: capture slack %.3f -> %.3f\n"
    (endpoint_slack report) (endpoint_slack slowed)
