(* The paper's "interactive mode": change the shapes of the clock
   waveforms and watch the system timing respond.

   A two-phase latch design is swept across overall clock periods and
   across phase widths; for each clocking the worst slack is reported.
   The crossover from "too slow" to "behaves as intended" shows the
   minimum workable period; widening the transparent-latch pulses buys
   slack through cycle borrowing.

   Run with:  dune exec examples/clock_whatif.exe *)

let analyse_at design system =
  let ctx = Hb_sta.Context.make ~design ~system () in
  let outcome = Hb_sta.Algorithm1.run ctx in
  ( outcome.Hb_sta.Algorithm1.final.Hb_sta.Slacks.worst,
    outcome.Hb_sta.Algorithm1.status )

let two_phase ~period ~duty =
  Hb_clock.System.make ~overall_period:period
    [ Hb_clock.Waveform.make ~name:"phi1" ~multiplier:1 ~rise:0.0
        ~width:(duty *. period);
      Hb_clock.Waveform.make ~name:"phi2" ~multiplier:1 ~rise:(0.5 *. period)
        ~width:(duty *. period);
    ]

let () =
  let design, _ =
    Hb_workload.Pipelines.two_phase ~width:6 ~stages:4 ~gates_per_stage:60 ()
  in

  print_endline "period sweep (40% duty):";
  print_endline "period(ns)  worst-slack(ns)  verdict";
  List.iter
    (fun period ->
       let worst, status = analyse_at design (two_phase ~period ~duty:0.4) in
       Printf.printf "%10.0f %16.3f  %s\n" period worst
         (match status with
          | Hb_sta.Algorithm1.Meets_timing -> "ok"
          | Hb_sta.Algorithm1.Slow_paths -> "TOO SLOW"))
    [ 10.0; 15.0; 20.0; 25.0; 30.0; 40.0; 60.0; 80.0; 100.0 ];

  print_newline ();
  print_endline "duty-cycle sweep at 24 ns (wider pulses = more borrowing):";
  print_endline "duty   worst-slack(ns)  verdict";
  List.iter
    (fun duty ->
       let worst, status = analyse_at design (two_phase ~period:24.0 ~duty) in
       Printf.printf "%4.2f %17.3f  %s\n" duty worst
         (match status with
          | Hb_sta.Algorithm1.Meets_timing -> "ok"
          | Hb_sta.Algorithm1.Slow_paths -> "TOO SLOW"))
    [ 0.10; 0.20; 0.30; 0.40; 0.45 ];

  print_newline ();
  print_endline
    "component-delay what-if: the same design with every cell 20% faster:";
  let faster =
    Hb_netlist.Rebuild.map_cells design ~f:(fun _ inst ->
        Hb_cell.Cell.with_scaled_delays inst.Hb_netlist.Design.cell
          ~factor:0.8 ~suffix:"")
  in
  let period = 20.0 in
  let worst_before, _ = analyse_at design (two_phase ~period ~duty:0.4) in
  let worst_after, _ = analyse_at faster (two_phase ~period ~duty:0.4) in
  Printf.printf "at %g ns: worst slack %.3f -> %.3f\n" period worst_before
    worst_after;

  print_newline ();
  print_endline "minimum workable period (bisection, 40% duty):";
  let result =
    Hb_sta.Minperiod.search ~design ~template:(two_phase ~period:100.0 ~duty:0.4)
      ~tolerance:0.05 ()
  in
  Printf.printf "min period %.2f ns (found in %d analyses)\n"
    result.Hb_sta.Minperiod.min_period result.Hb_sta.Minperiod.evaluations
