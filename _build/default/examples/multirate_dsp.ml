(* Multi-frequency analysis end-to-end: the DSP-style datapath.

   The input half of the chip samples on a 2x clock; the accumulator half
   runs at the base rate, with transparent latches between the domains.
   Each 2x synchroniser is replicated into one generic element per pulse
   (paper, Section 4), and the fast->slow crossings pair each launch with
   the *next* slow closure.

   Run with:  dune exec examples/multirate_dsp.exe *)

let () =
  let design, system = Hb_workload.Chips.dsp () in
  let report = Hb_sta.Engine.analyse ~design ~system () in
  print_string (Hb_sta.Report.summary report);
  print_newline ();

  let ctx = report.Hb_sta.Engine.context in
  let elements = ctx.Hb_sta.Context.elements in

  (* Replication at work: count elements per clock. *)
  let by_clock = Hashtbl.create 4 in
  for e = 0 to Hb_sta.Elements.count elements - 1 do
    match (Hb_sta.Elements.element elements e).Hb_sync.Element.closure_edge with
    | Some edge ->
      let clock = edge.Hb_clock.Edge.clock in
      Hashtbl.replace by_clock clock
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_clock clock))
    | None -> ()
  done;
  print_endline "element replicas per clock domain:";
  Hashtbl.iter (fun clock n -> Printf.printf "  %-4s %d\n" clock n) by_clock;
  print_newline ();

  (* The worst cross-domain path. *)
  let slacks = report.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.final in
  print_endline "worst path:";
  print_string (Hb_sta.Report.paths_report ctx slacks ~limit:1);
  print_newline ();

  (* How fast can it be clocked (keeping the 2x relationship)? *)
  let result = Hb_sta.Minperiod.search ~design ~template:system ~tolerance:0.5 () in
  Printf.printf "minimum overall period: %.1f ns (%d analyses)\n"
    result.Hb_sta.Minperiod.min_period result.Hb_sta.Minperiod.evaluations;
  print_newline ();

  (* Corner view at the shipped period. *)
  let corners = Hb_sta.Corners.analyse ~design ~system () in
  print_endline "corner analysis:";
  print_endline (Hb_sta.Corners.to_table corners)
