examples/quickstart.mli:
