examples/multirate_dsp.ml: Hashtbl Hb_clock Hb_sta Hb_sync Hb_workload Option Printf
