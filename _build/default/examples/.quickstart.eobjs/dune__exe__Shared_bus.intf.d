examples/shared_bus.mli:
