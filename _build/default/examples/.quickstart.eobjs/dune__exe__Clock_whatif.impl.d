examples/clock_whatif.ml: Hb_cell Hb_clock Hb_netlist Hb_sta Hb_workload List Printf
