examples/blif_flow.ml: Array Hashtbl Hb_cell Hb_clock Hb_netlist Hb_sta List Printf
