examples/multirate_dsp.mli:
