examples/time_multiplexed.ml: Array Hb_sta Hb_sync Hb_workload List Printf
