examples/clock_whatif.mli:
