examples/shared_bus.ml: Array Hb_netlist Hb_sta Hb_sync Hb_util Hb_workload List Printf String
