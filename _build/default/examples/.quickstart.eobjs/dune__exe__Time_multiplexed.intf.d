examples/time_multiplexed.mli:
