examples/quickstart.ml: Hb_cell Hb_clock Hb_netlist Hb_sta
