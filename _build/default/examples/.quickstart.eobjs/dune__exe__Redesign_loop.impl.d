examples/redesign_loop.ml: Hb_cell Hb_resynth Hb_sta Hb_workload List Printf
