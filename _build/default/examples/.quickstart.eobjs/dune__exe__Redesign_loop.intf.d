examples/redesign_loop.mli:
