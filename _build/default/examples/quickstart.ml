(* Quickstart: build a small two-phase transparent-latch design by hand,
   describe its clocks, run Hummingbird, and read the results.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A cell library. The built-in one models a late-1980s CMOS
     standard-cell kit: gates at three drive strengths plus a flip-flop, a
     transparent latch and a tristate driver. *)
  let library = Hb_cell.Library.default () in

  (* 2. A design: din -> latch(phi1) -> three gates -> latch(phi2) -> dout.
     Nets spring into existence when first named. *)
  let b = Hb_netlist.Builder.create ~name:"quickstart" ~library in
  Hb_netlist.Builder.add_port b ~name:"phi1"
    ~direction:Hb_netlist.Design.Port_in ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"phi2"
    ~direction:Hb_netlist.Design.Port_in ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"din"
    ~direction:Hb_netlist.Design.Port_in ~is_clock:false;
  Hb_netlist.Builder.add_port b ~name:"dout"
    ~direction:Hb_netlist.Design.Port_out ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"l1" ~cell:"latch"
    ~connections:[ ("d", "din"); ("ck", "phi1"); ("q", "n1") ] ();
  Hb_netlist.Builder.add_instance b ~name:"g1" ~cell:"nand2_x1"
    ~connections:[ ("a", "n1"); ("b", "n1"); ("y", "n2") ] ();
  Hb_netlist.Builder.add_instance b ~name:"g2" ~cell:"xor2_x1"
    ~connections:[ ("a", "n2"); ("b", "n1"); ("y", "n3") ] ();
  Hb_netlist.Builder.add_instance b ~name:"g3" ~cell:"inv_x2"
    ~connections:[ ("a", "n3"); ("y", "n4") ] ();
  Hb_netlist.Builder.add_instance b ~name:"l2" ~cell:"latch"
    ~connections:[ ("d", "n4"); ("ck", "phi2"); ("q", "dout") ] ();
  let design = Hb_netlist.Builder.freeze b in

  (* 3. Clock waveforms: a 100 ns period, two non-overlapping 40 ns
     phases. Clock port names must match waveform names. *)
  let system =
    Hb_clock.System.make ~overall_period:100.0
      [ Hb_clock.Waveform.make ~name:"phi1" ~multiplier:1 ~rise:0.0 ~width:40.0;
        Hb_clock.Waveform.make ~name:"phi2" ~multiplier:1 ~rise:50.0 ~width:40.0;
      ]
  in

  (* 4. Analyse. *)
  let report = Hb_sta.Engine.analyse ~design ~system () in
  print_string (Hb_sta.Report.summary report);

  (* 5. Inspect the most critical paths. *)
  let ctx = report.Hb_sta.Engine.context in
  let slacks = report.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.final in
  print_newline ();
  print_string (Hb_sta.Report.paths_report ctx slacks ~limit:2);

  (* 6. The same netlist and clocks as text, for the CLI tools. *)
  print_newline ();
  print_endline "--- design in .hbn syntax ---";
  print_string (Hb_netlist.Hbn_format.write design);
  print_endline "--- clocks in .hbc syntax ---";
  print_string (Hb_clock.System.to_string system)
