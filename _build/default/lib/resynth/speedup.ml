type change = {
  inst_name : string;
  old_cell : string;
  new_cell : string;
}

let upsize_instances design ~library ~instances =
  let targets = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace targets i ()) instances;
  let changes = ref [] in
  let choose i (inst : Hb_netlist.Design.instance) =
    let cell = inst.Hb_netlist.Design.cell in
    if Hashtbl.mem targets i
    && Hb_cell.Kind.is_comb cell.Hb_cell.Cell.kind then
      match Hb_cell.Library.upsize library cell with
      | Some faster ->
        changes :=
          { inst_name = inst.Hb_netlist.Design.inst_name;
            old_cell = cell.Hb_cell.Cell.name;
            new_cell = faster.Hb_cell.Cell.name }
          :: !changes;
        faster
      | None -> cell
    else cell
  in
  let rebuilt = Hb_netlist.Rebuild.map_cells design ~f:choose in
  match !changes with
  | [] -> None
  | changes -> Some (rebuilt, List.rev changes)
