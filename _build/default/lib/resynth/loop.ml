type step = {
  iteration : int;
  worst_slack : Hb_util.Time.t;
  area : float;
  changed : Speedup.change list;
}

type result = {
  design : Hb_netlist.Design.t;
  met_timing : bool;
  iterations : int;
  history : step list;
  final_worst_slack : Hb_util.Time.t;
  final_area : float;
}

(* Combinational instances on the worst critical paths, worst first. *)
let candidates ctx slacks =
  let paths = Hb_sta.Paths.worst_paths ctx slacks ~limit:5 in
  let seen = Hashtbl.create 16 in
  let ordered = ref [] in
  List.iter
    (fun (path : Hb_sta.Paths.path) ->
       if Hb_util.Time.le path.Hb_sta.Paths.slack 0.0 then
         List.iter
           (fun (hop : Hb_sta.Paths.hop) ->
              match hop.Hb_sta.Paths.via with
              | Some inst when not (Hashtbl.mem seen inst) ->
                Hashtbl.replace seen inst ();
                ordered := inst :: !ordered
              | Some _ | None -> ())
           path.Hb_sta.Paths.hops)
    paths;
  List.rev !ordered

let optimise ~design ~system ~library ?config ?(max_iterations = 50) () =
  let rec iterate previous_ctx design iteration history =
    (* After the first iteration only cell delays change, so the cluster
       decomposition and pass plans are refreshed incrementally. *)
    let ctx =
      match previous_ctx with
      | None -> Hb_sta.Context.make ~design ~system ?config ()
      | Some ctx -> Hb_sta.Context.update_design ctx ~design ()
    in
    let outcome = Hb_sta.Algorithm1.run ctx in
    let slacks = outcome.Hb_sta.Algorithm1.final in
    let area = (Hb_netlist.Stats.compute design).Hb_netlist.Stats.area in
    let finish met_timing =
      { design;
        met_timing;
        iterations = iteration;
        history = List.rev history;
        final_worst_slack = slacks.Hb_sta.Slacks.worst;
        final_area = area;
      }
    in
    match outcome.Hb_sta.Algorithm1.status with
    | Hb_sta.Algorithm1.Meets_timing -> finish true
    | Hb_sta.Algorithm1.Slow_paths ->
      if iteration >= max_iterations then finish false
      else begin
        match
          Speedup.upsize_instances design ~library
            ~instances:(candidates ctx slacks)
        with
        | None -> finish false
        | Some (improved, changed) ->
          let step =
            { iteration;
              worst_slack = slacks.Hb_sta.Slacks.worst;
              area;
              changed }
          in
          iterate (Some ctx) improved (iteration + 1) (step :: history)
      end
  in
  iterate None design 0 []
