lib/resynth/loop.mli: Hb_cell Hb_clock Hb_netlist Hb_sta Hb_util Speedup
