lib/resynth/loop.ml: Hashtbl Hb_netlist Hb_sta Hb_util List Speedup
