lib/resynth/speedup.ml: Hashtbl Hb_cell Hb_netlist List
