lib/resynth/speedup.mli: Hb_cell Hb_netlist
