(** The re-design operator of the analysis/re-design loop.

    Stands in for the timing-optimisation program of Singh et al. ([1] in
    the paper): speeds a set of combinational instances up by substituting
    the next higher drive variant from the library. Upsizing shortens the
    load-dependent part of a cell's delay at the cost of area and of extra
    input capacitance presented upstream — the classic trade the
    analysis/redesign loop negotiates. *)

type change = {
  inst_name : string;
  old_cell : string;
  new_cell : string;
}

(** [upsize_instances design ~library ~instances] replaces each listed
    combinational instance with its next drive variant when one exists.
    Returns the rebuilt design and the changes made; [None] when no listed
    instance could be improved (the design is returned unchanged). *)
val upsize_instances :
  Hb_netlist.Design.t ->
  library:Hb_cell.Library.t ->
  instances:int list ->
  (Hb_netlist.Design.t * change list) option
