(* Subtree capacitance per node, by a reverse sweep (children have larger
   indices than parents, so a right-to-left accumulation suffices). *)
let subtree_capacitance (tree : Tree.t) =
  let n = Tree.node_count tree in
  let sub = Array.init n (fun i -> tree.Tree.nodes.(i).Tree.capacitance) in
  for i = n - 1 downto 1 do
    let parent = tree.Tree.nodes.(i).Tree.parent in
    sub.(parent) <- sub.(parent) +. sub.(i)
  done;
  sub

(* TD(i) = TD(parent) + R_i * C_sub(i), rooted at r_driver * C_total:
   standard recursive form of the Elmore sum. *)
let delays tree ~r_driver =
  if r_driver < 0.0 then invalid_arg "Elmore.delays: negative driver resistance";
  let n = Tree.node_count tree in
  let sub = subtree_capacitance tree in
  let td = Array.make n (r_driver *. sub.(0)) in
  for i = 1 to n - 1 do
    let node = tree.Tree.nodes.(i) in
    td.(i) <- td.(node.Tree.parent) +. (node.Tree.resistance *. sub.(i))
  done;
  td

(* RP upper-bound moment: TP(i) = r_driver * C_total + Σ_{k on path} R_k *
   C_total(k-side)... we use the common conservative form replacing each
   path segment's downstream cap with the total tree cap below the
   segment's head, which reduces to the Elmore recursion with C_sub
   replaced by the segment head's full subtree — identical here — plus the
   second-moment spread; we expose the simple dominating bound
   TP(i) = r_driver * C_total + path_resistance(i) * C_total. *)
let upper_bounds tree ~r_driver =
  if r_driver < 0.0 then invalid_arg "Elmore.upper_bounds: negative driver resistance";
  let n = Tree.node_count tree in
  let total = Tree.total_capacitance tree in
  Array.init n (fun i ->
      (r_driver *. total) +. (Tree.path_resistance tree i *. total))

let worst_sink tree ~r_driver =
  let td = delays tree ~r_driver in
  let best = ref (-1) in
  let consider i =
    if !best < 0 || td.(i) > td.(!best) then best := i
  in
  Array.iteri
    (fun i (node : Tree.node) -> if node.Tree.label <> "" then consider i)
    tree.Tree.nodes;
  if !best < 0 then Array.iteri (fun i _ -> consider i) tree.Tree.nodes;
  (!best, td.(!best))
