lib/rc/elmore.ml: Array Tree
