lib/rc/tree.mli:
