lib/rc/wire_model.ml: List Tree
