lib/rc/tree.ml: Array Printf String
