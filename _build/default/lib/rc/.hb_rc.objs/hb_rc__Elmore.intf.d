lib/rc/elmore.mli: Tree
