lib/rc/wire_model.mli: Tree
