(** RC trees.

    The interconnect model behind switch-level delay estimation
    (Ousterhout [2] and Rubinstein–Penfield, which the paper cites as one
    of the pluggable component-delay estimators): a rooted tree of
    resistive segments with capacitance hanging at every node. Node 0 is
    the root (the driving cell's output); every other node connects to its
    parent through a resistance. *)

type node = {
  parent : int;           (** parent node index; [-1] for the root *)
  resistance : float;     (** kΩ from the parent; 0 for the root *)
  capacitance : float;    (** pF at this node *)
  label : string;         (** for reports, e.g. a sink pin name *)
}

type t = private {
  nodes : node array;     (** indexed by node id; node 0 is the root *)
  children : int list array;
}

(** [build nodes] validates and indexes the tree: node 0 must be the root
    ([parent = -1]); every other node's parent must precede it; resistances
    and capacitances must be non-negative.
    @raise Invalid_argument otherwise. *)
val build : node list -> t

(** [node_count t]. *)
val node_count : t -> int

(** [total_capacitance t] is the sum over all nodes — the lumped load the
    linear model would see. *)
val total_capacitance : t -> float

(** [path_resistance t i] is the resistance from the root down to node
    [i]. *)
val path_resistance : t -> int -> float

(** [find t label] is the first node carrying [label]. *)
val find : t -> string -> int option
