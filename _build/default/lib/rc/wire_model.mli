(** Synthetic interconnect builder.

    Designs carried by [.hbn] have no layout, so interconnect is
    synthesised from net topology: one wire segment per sink, either as a
    {e star} (every sink hangs off the root through its own segment) or a
    {e chain} (sinks daisy-chained, the pessimistic routing). Segment
    parasitics are per-sink constants, mirroring the per-load wire
    capacitance of the lumped model so the two estimators see the same
    total capacitance. *)

type topology = Star | Chain

type parameters = {
  segment_resistance : float;   (** kΩ per segment *)
  segment_capacitance : float;  (** pF per segment (wire only) *)
  topology : topology;
}

val default : parameters
(** Star topology, 0.05 kΩ and 0.015 pF per segment (matching the lumped
    model's wire capacitance per load). *)

(** [net_tree ~parameters ~sinks] builds the RC tree for one net.
    [sinks] are [(label, pin_capacitance)] pairs, one per load pin.
    The root node carries no capacitance of its own. *)
val net_tree : parameters:parameters -> sinks:(string * float) list -> Tree.t
