type topology = Star | Chain

type parameters = {
  segment_resistance : float;
  segment_capacitance : float;
  topology : topology;
}

let default =
  { segment_resistance = 0.05; segment_capacitance = 0.015; topology = Star }

let net_tree ~parameters ~sinks =
  let root =
    { Tree.parent = -1; resistance = 0.0; capacitance = 0.0; label = "" }
  in
  let nodes =
    match parameters.topology with
    | Star ->
      root
      :: List.map
           (fun (label, pin_capacitance) ->
              { Tree.parent = 0;
                resistance = parameters.segment_resistance;
                capacitance = pin_capacitance +. parameters.segment_capacitance;
                label })
           sinks
    | Chain ->
      let _, reversed =
        List.fold_left
          (fun (parent, acc) (label, pin_capacitance) ->
             let node =
               { Tree.parent;
                 resistance = parameters.segment_resistance;
                 capacitance = pin_capacitance +. parameters.segment_capacitance;
                 label }
             in
             (parent + 1, node :: acc))
          (0, []) sinks
      in
      root :: List.rev reversed
  in
  Tree.build nodes
