(** Elmore delay and Rubinstein–Penfield bounds on RC trees.

    For a step applied at the root through a driver resistance [r_driver],
    the Elmore delay to node [i] is

      TD(i) = Σ_k R(path(root→i) ∩ path(root→k)) · C_k

    with the driver resistance common to every path. The
    Rubinstein–Penfield analysis brackets the true 50% delay:
    TP(i) ≤ t50(i) ≤ TD(i) · ln 2 ... bounds vary by formulation; here we
    expose the two standard first-moment quantities:

    - {!delays} — the Elmore first moment TD per node;
    - {!upper_bounds} — the RP upper bound
      [TP(i) = Σ_k R_k · C_sub(k)] summed along the path to [i] plus the
      driver term, which dominates TD. *)

(** [delays tree ~r_driver] computes the Elmore delay (ns, with kΩ·pF
    units) from the driving source to every node. *)
val delays : Tree.t -> r_driver:float -> float array

(** [upper_bounds tree ~r_driver] computes, per node, the
    Rubinstein–Penfield upper-bound moment: always ≥ the Elmore delay of
    the same node. *)
val upper_bounds : Tree.t -> r_driver:float -> float array

(** [worst_sink tree ~r_driver] is the maximum Elmore delay over nodes
    that carry a non-empty label (the sink pins), with its node index;
    falls back to the global maximum when no node is labelled. *)
val worst_sink : Tree.t -> r_driver:float -> int * float
