type node = {
  parent : int;
  resistance : float;
  capacitance : float;
  label : string;
}

type t = {
  nodes : node array;
  children : int list array;
}

let build nodes =
  let nodes = Array.of_list nodes in
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Tree.build: empty tree";
  if nodes.(0).parent <> -1 then invalid_arg "Tree.build: node 0 must be the root";
  Array.iteri
    (fun i node ->
       if i > 0 && (node.parent < 0 || node.parent >= i) then
         invalid_arg
           (Printf.sprintf "Tree.build: node %d has invalid parent %d" i node.parent);
       if node.resistance < 0.0 then
         invalid_arg (Printf.sprintf "Tree.build: node %d has negative resistance" i);
       if node.capacitance < 0.0 then
         invalid_arg (Printf.sprintf "Tree.build: node %d has negative capacitance" i))
    nodes;
  let children = Array.make n [] in
  for i = n - 1 downto 1 do
    children.(nodes.(i).parent) <- i :: children.(nodes.(i).parent)
  done;
  { nodes; children }

let node_count t = Array.length t.nodes

let total_capacitance t =
  Array.fold_left (fun acc node -> acc +. node.capacitance) 0.0 t.nodes

let path_resistance t i =
  let rec walk i acc =
    if i <= 0 then acc
    else walk t.nodes.(i).parent (acc +. t.nodes.(i).resistance)
  in
  walk i 0.0

let find t label =
  let result = ref None in
  Array.iteri
    (fun i node ->
       if !result = None && String.equal node.label label then result := Some i)
    t.nodes;
  !result
