(** Single clock waveforms.

    The paper assumes synchronous operation: "all clock waveforms have
    harmonically related frequencies, and there is an overall period which
    is an integer multiple of the period of each clock signal" (Section 3).
    We encode that exactly: a waveform is declared relative to an overall
    period [T] by an integer frequency [multiplier] [m] (its own period is
    [T/m]) and by the leading-edge offset and pulse width within its own
    period. *)

type t = private {
  name : string;
  multiplier : int;       (** pulses per overall period; >= 1 *)
  rise : Hb_util.Time.t;  (** leading-edge offset within own period *)
  width : Hb_util.Time.t; (** pulse width; leading edge + width = trailing *)
}

(** [make ~name ~multiplier ~rise ~width] validates the waveform in the
    abstract (bounds that do not depend on the overall period).
    @raise Invalid_argument when [multiplier < 1], [rise < 0] or
    [width <= 0]. *)
val make :
  name:string ->
  multiplier:int ->
  rise:Hb_util.Time.t ->
  width:Hb_util.Time.t ->
  t

(** [own_period t ~overall_period] is [overall_period / multiplier]. *)
val own_period : t -> overall_period:Hb_util.Time.t -> Hb_util.Time.t

(** [check t ~overall_period] verifies the pulse fits its own period:
    [rise + width <= own period] (pulses do not wrap).
    @raise Invalid_argument otherwise. *)
val check : t -> overall_period:Hb_util.Time.t -> unit

(** [leading_edge t ~overall_period ~pulse] is the absolute time of the
    leading edge of pulse number [pulse] (0-based) within the overall
    period. *)
val leading_edge :
  t -> overall_period:Hb_util.Time.t -> pulse:int -> Hb_util.Time.t

(** [trailing_edge t ~overall_period ~pulse] likewise for the trailing
    edge. *)
val trailing_edge :
  t -> overall_period:Hb_util.Time.t -> pulse:int -> Hb_util.Time.t

val pp : Format.formatter -> t -> unit
