type requirement = {
  before : int;
  after : int;
}

let position ~node_count ~cut node =
  ((node - cut - 1) mod node_count + node_count) mod node_count

let satisfies ~node_count ~cut req =
  req.before <> req.after
  && position ~node_count ~cut req.before < position ~node_count ~cut req.after

let check_inputs ~node_count requirements =
  if node_count < 1 then invalid_arg "Break.solve: node_count must be >= 1";
  List.iter
    (fun req ->
       if req.before < 0 || req.before >= node_count
       || req.after < 0 || req.after >= node_count then
         invalid_arg "Break.solve: node index out of range";
       if req.before = req.after then
         invalid_arg "Break.solve: requirement with before = after")
    requirements

(* Exhaustive search for a minimum hitting set, as the paper does: "all
   removal of each single original arc, then ... all possible pairs, and so
   on". Requirement sets are tiny (one per distinct edge pair), and "very
   seldom is it necessary to remove more than two arcs". *)
let solve ~node_count requirements =
  check_inputs ~node_count requirements;
  (* Deduplicate requirements; many cluster paths share edge pairs. *)
  let requirements = List.sort_uniq compare requirements in
  if requirements = [] then [ node_count - 1 ]
  else begin
    let satisfying =
      List.map
        (fun req ->
           let hits = ref [] in
           for cut = node_count - 1 downto 0 do
             if satisfies ~node_count ~cut req then hits := cut :: !hits
           done;
           if !hits = [] then
             failwith
               (Printf.sprintf
                  "Break.solve: requirement %d before %d unsatisfiable"
                  req.before req.after);
           !hits)
        requirements
    in
    (* Candidate cuts: only cuts that satisfy at least one requirement
       matter, but a minimum set drawn from all cuts is equivalent. *)
    let all_cuts = List.sort_uniq compare (List.concat satisfying) in
    let covers cuts =
      List.for_all (fun hits -> List.exists (fun c -> List.mem c cuts) hits)
        satisfying
    in
    (* Enumerate subsets of [all_cuts] of the given size. *)
    let rec subsets k items =
      if k = 0 then [ [] ]
      else
        match items with
        | [] -> []
        | x :: rest ->
          List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest
    in
    let rec search size =
      if size > List.length all_cuts then
        (* Unreachable: taking one satisfying cut per requirement always
           covers. *)
        all_cuts
      else
        match List.find_opt covers (subsets size all_cuts) with
        | Some cuts -> List.sort compare cuts
        | None -> search (size + 1)
    in
    search 1
  end

let assign ~node_count ~cuts node =
  match cuts with
  | [] -> invalid_arg "Break.assign: empty cut set"
  | first :: rest ->
    let score cut = position ~node_count ~cut node in
    List.fold_left
      (fun best cut -> if score cut > score best then cut else best)
      first rest
