(** Identities of clock edges within one overall period.

    "Transitions at clock generator output terminals are the clock edge
    times" (paper, Section 4). After multi-rate replication every
    synchronising element references exactly one leading and one trailing
    edge per overall period; these identities are the nodes of the
    clock-edge graph of Section 7. *)

type polarity = Leading | Trailing

type t = {
  clock : string;   (** waveform name *)
  pulse : int;      (** pulse index within the overall period, 0-based *)
  polarity : polarity;
}

val leading : clock:string -> pulse:int -> t
val trailing : clock:string -> pulse:int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
