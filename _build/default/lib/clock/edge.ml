type polarity = Leading | Trailing

type t = {
  clock : string;
  pulse : int;
  polarity : polarity;
}

let leading ~clock ~pulse = { clock; pulse; polarity = Leading }
let trailing ~clock ~pulse = { clock; pulse; polarity = Trailing }
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf t =
  let symbol = match t.polarity with Leading -> "+" | Trailing -> "-" in
  Format.fprintf ppf "%s[%d]%s" t.clock t.pulse symbol

let to_string t = Format.asprintf "%a" pp t
