lib/clock/break.mli:
