lib/clock/waveform.ml: Format Hb_util Printf
