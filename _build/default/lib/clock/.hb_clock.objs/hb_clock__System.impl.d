lib/clock/system.ml: Array Buffer Edge Format Hb_util List Printf String Waveform
