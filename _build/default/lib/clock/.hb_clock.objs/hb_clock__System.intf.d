lib/clock/system.mli: Edge Format Hb_util Waveform
