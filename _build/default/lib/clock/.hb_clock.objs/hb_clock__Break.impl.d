lib/clock/break.ml: List Printf
