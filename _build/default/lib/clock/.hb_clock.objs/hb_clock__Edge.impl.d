lib/clock/edge.ml: Format Stdlib
