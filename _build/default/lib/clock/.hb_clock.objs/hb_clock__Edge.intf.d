lib/clock/edge.mli: Format
