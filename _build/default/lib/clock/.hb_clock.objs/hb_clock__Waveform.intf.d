lib/clock/waveform.mli: Format Hb_util
