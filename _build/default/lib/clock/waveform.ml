type t = {
  name : string;
  multiplier : int;
  rise : Hb_util.Time.t;
  width : Hb_util.Time.t;
}

let make ~name ~multiplier ~rise ~width =
  let fail fmt = Format.kasprintf invalid_arg ("Waveform.make(%s): " ^^ fmt) name in
  if multiplier < 1 then fail "multiplier must be >= 1";
  if rise < 0.0 then fail "rise must be non-negative";
  if width <= 0.0 then fail "width must be positive";
  { name; multiplier; rise; width }

let own_period t ~overall_period = overall_period /. float_of_int t.multiplier

let check t ~overall_period =
  if overall_period <= 0.0 then
    invalid_arg "Waveform.check: overall period must be positive";
  let period = own_period t ~overall_period in
  if Hb_util.Time.gt (t.rise +. t.width) period then
    invalid_arg
      (Printf.sprintf
         "Waveform.check(%s): pulse [%g, %g] does not fit period %g"
         t.name t.rise (t.rise +. t.width) period)

let leading_edge t ~overall_period ~pulse =
  if pulse < 0 || pulse >= t.multiplier then
    invalid_arg (Printf.sprintf "Waveform.leading_edge: pulse %d out of range" pulse);
  t.rise +. (float_of_int pulse *. own_period t ~overall_period)

let trailing_edge t ~overall_period ~pulse =
  leading_edge t ~overall_period ~pulse +. t.width

let pp ppf t =
  Format.fprintf ppf "%s (x%d, rise %a, width %a)"
    t.name t.multiplier Hb_util.Time.pp t.rise Hb_util.Time.pp t.width
