(** Plain-text table rendering for reports and benchmark output. *)

type align = Left | Right

(** [render ~header ?align rows] lays the rows out in aligned columns and
    returns the resulting multi-line string. Each row must have as many
    cells as [header]. [align] defaults to left-aligning every column. *)
val render : header:string list -> ?align:align list -> string list list -> string

(** [print ~header ?align rows] writes the rendered table to stdout. *)
val print : header:string list -> ?align:align list -> string list list -> unit
