type 'a entry = { priority : float; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }
let is_empty t = t.size = 0
let length t = t.size

let grow t entry =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let fresh = Array.make (Stdlib.max 8 (2 * capacity)) entry in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(i).priority < t.data.(parent).priority then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let push t ~priority value =
  let entry = { priority; value } in
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && t.data.(left).priority < t.data.(!smallest).priority
  then smallest := left;
  if right < t.size && t.data.(right).priority < t.data.(!smallest).priority
  then smallest := right;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let pop t =
  if t.size = 0 then raise Not_found;
  let top = t.data.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.data.(0) <- t.data.(t.size);
    sift_down t 0
  end;
  (top.priority, top.value)

let peek t =
  if t.size = 0 then raise Not_found;
  (t.data.(0).priority, t.data.(0).value)
