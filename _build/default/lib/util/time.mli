(** Time scalars.

    All times in Hummingbird are expressed in nanoseconds as [float]s.
    Because offsets are repeatedly adjusted by slack-transfer operations,
    comparisons must tolerate accumulated rounding; every comparison in the
    analyser goes through this module. *)

type t = float

(** Comparison tolerance in nanoseconds. *)
val eps : t

val zero : t

(** A value standing in for "no constraint" (used for slacks of cluster
    outputs that are not analysed during a pass). *)
val infinity : t

val neg_infinity : t

(** [equal a b] is true when [a] and [b] differ by at most {!eps}. *)
val equal : t -> t -> bool

(** [lt a b] is true when [a] is smaller than [b] by more than {!eps}. *)
val lt : t -> t -> bool

(** [le a b] is [lt a b || equal a b]. *)
val le : t -> t -> bool

(** [gt a b] is [lt b a]. *)
val gt : t -> t -> bool

(** [ge a b] is [le b a]. *)
val ge : t -> t -> bool

(** [is_negative t] is [lt t zero]; used for "slack is a violation". *)
val is_negative : t -> bool

(** [is_positive t] is [gt t zero]. *)
val is_positive : t -> bool

(** [is_finite t] is false for both infinities and NaN. *)
val is_finite : t -> bool

val min : t -> t -> t
val max : t -> t -> t

(** [clamp ~lo ~hi t] restricts [t] to the closed interval [[lo, hi]].
    Raises [Invalid_argument] when [lo > hi] beyond tolerance. *)
val clamp : lo:t -> hi:t -> t -> t

(** [modulo t ~period] reduces [t] into [[0, period)). [period] must be
    positive. *)
val modulo : t -> period:t -> t

(** Pretty-printer rendering e.g. ["12.500 ns"], with infinities rendered as
    ["+inf"] / ["-inf"]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
