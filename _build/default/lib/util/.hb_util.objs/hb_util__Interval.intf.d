lib/util/interval.mli: Format Time
