lib/util/table.mli:
