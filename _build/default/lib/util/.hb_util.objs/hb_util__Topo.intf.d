lib/util/topo.mli:
