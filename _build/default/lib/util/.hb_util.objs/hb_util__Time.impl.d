lib/util/time.ml: Float Format Printf Stdlib
