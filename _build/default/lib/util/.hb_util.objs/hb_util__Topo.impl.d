lib/util/topo.ml: Array List Printf String
