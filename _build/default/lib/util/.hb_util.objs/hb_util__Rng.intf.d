lib/util/rng.mli:
