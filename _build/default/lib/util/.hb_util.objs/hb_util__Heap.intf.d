lib/util/heap.mli:
