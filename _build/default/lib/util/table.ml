type align = Left | Right

let pad align width cell =
  let gap = width - String.length cell in
  if gap <= 0 then cell
  else
    match align with
    | Left -> cell ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ cell

let render ~header ?align rows =
  let columns = List.length header in
  List.iteri
    (fun i row ->
       if List.length row <> columns then
         invalid_arg
           (Printf.sprintf "Table.render: row %d has %d cells, expected %d"
              i (List.length row) columns))
    rows;
  let align =
    match align with
    | Some a when List.length a = columns -> a
    | Some _ -> invalid_arg "Table.render: align length mismatch"
    | None -> List.init columns (fun _ -> Left)
  in
  let widths = Array.of_list (List.map String.length header) in
  let note row =
    List.iteri
      (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
      row
  in
  List.iter note rows;
  let line row =
    String.concat "  "
      (List.mapi (fun i cell -> pad (List.nth align i) widths.(i) cell) row)
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ~header ?align rows =
  print_endline (render ~header ?align rows)
