type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  if bound <= 0.0 then invalid_arg "Rng.float: bound must be positive";
  let bits = Int64.shift_right_logical (next t) 11 in
  (* 53 uniformly random mantissa bits. *)
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let choose t items =
  if Array.length items = 0 then invalid_arg "Rng.choose: empty array";
  items.(int t (Array.length items))

let shuffle t items =
  let n = Array.length items in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = items.(i) in
    items.(i) <- items.(j);
    items.(j) <- tmp
  done
