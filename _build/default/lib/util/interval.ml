type t = { lo : Time.t; hi : Time.t }

let make ~lo ~hi =
  if Time.lt hi lo then
    invalid_arg (Printf.sprintf "Interval.make: [%g, %g] is empty" lo hi);
  { lo; hi }

let point v = { lo = v; hi = v }
let lo t = t.lo
let hi t = t.hi
let mem v t = Time.ge v t.lo && Time.le v t.hi
let width t = t.hi -. t.lo
let clamp v t = Time.clamp ~lo:t.lo ~hi:t.hi v
let headroom_down v t = Time.max 0.0 (v -. t.lo)
let headroom_up v t = Time.max 0.0 (t.hi -. v)
let pp ppf t = Format.fprintf ppf "[%a, %a]" Time.pp t.lo Time.pp t.hi
