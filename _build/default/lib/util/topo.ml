type result =
  | Sorted of int array
  | Cycle of int list

type mark = White | Grey | Black

(* Iterative depth-first search with colour marks; a Grey→Grey edge closes a
   cycle, which is then reconstructed from the explicit stack. *)
let sort ~nodes ~successors =
  let marks = Array.make nodes White in
  let order = Array.make nodes 0 in
  let filled = ref nodes in
  (* Stack frames: node and the successors not yet visited. *)
  let stack = ref [] in
  let cycle = ref None in
  let find_cycle target =
    (* The Grey nodes on the stack from [target] onwards form the cycle. *)
    let rec collect acc = function
      | [] -> acc
      | (node, _) :: rest ->
        if node = target then node :: acc else collect (node :: acc) rest
    in
    collect [] !stack
  in
  let visit start =
    stack := [ (start, successors start) ];
    marks.(start) <- Grey;
    while !stack <> [] && !cycle = None do
      match !stack with
      | [] -> ()
      | (node, pending) :: rest ->
        (match pending with
         | [] ->
           marks.(node) <- Black;
           decr filled;
           order.(!filled) <- node;
           stack := rest
         | succ :: pending ->
           stack := (node, pending) :: rest;
           (match marks.(succ) with
            | White ->
              marks.(succ) <- Grey;
              stack := (succ, successors succ) :: !stack
            | Grey -> cycle := Some (find_cycle succ)
            | Black -> ()))
    done
  in
  let node = ref 0 in
  while !node < nodes && !cycle = None do
    if marks.(!node) = White then visit !node;
    incr node
  done;
  match !cycle with
  | Some c -> Cycle c
  | None -> Sorted order

let sort_exn ~nodes ~successors =
  match sort ~nodes ~successors with
  | Sorted order -> order
  | Cycle c ->
    let path = String.concat " -> " (List.map string_of_int c) in
    failwith (Printf.sprintf "Topo.sort_exn: directed cycle: %s" path)
