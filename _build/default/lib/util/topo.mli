(** Topological ordering of integer-indexed directed graphs.

    Nodes are [0 .. n-1]; edges are given by a successor function. The
    combinational portions of a design are required to be acyclic (paper,
    Section 3), and the analyser depends on reporting an explicit cycle
    witness when they are not. *)

type result =
  | Sorted of int array
      (** Nodes in an order such that every edge goes from an earlier to a
          later element. *)
  | Cycle of int list
      (** A directed cycle, listed in edge order; the last node has an edge
          back to the first. *)

(** [sort ~nodes ~successors] orders the graph with [nodes] vertices.
    [successors i] must list the direct successors of node [i]. *)
val sort : nodes:int -> successors:(int -> int list) -> result

(** [sort_exn ~nodes ~successors] is [sort] but raises [Failure] with a
    readable cycle description instead of returning [Cycle _]. *)
val sort_exn : nodes:int -> successors:(int -> int list) -> int array
