(** Closed intervals over {!Time.t}.

    The synchronising-element constraints of Section 5 bound each adjustable
    offset to a closed interval; slack transfer moves the offset inside it. *)

type t = private { lo : Time.t; hi : Time.t }

(** [make ~lo ~hi] builds the interval [[lo, hi]].
    @raise Invalid_argument when [lo > hi] beyond tolerance. *)
val make : lo:Time.t -> hi:Time.t -> t

(** [point v] is the degenerate interval [[v, v]]. *)
val point : Time.t -> t

val lo : t -> Time.t
val hi : t -> Time.t

(** [mem v t] tests membership with tolerance. *)
val mem : Time.t -> t -> bool

(** [width t] is [hi - lo]. *)
val width : t -> Time.t

(** [clamp v t] is the point of [t] closest to [v]. *)
val clamp : Time.t -> t -> Time.t

(** [headroom_down v t] is how far [v] may decrease and stay inside [t]
    (zero when [v] is at or below the lower bound). *)
val headroom_down : Time.t -> t -> Time.t

(** [headroom_up v t] is how far [v] may increase and stay inside [t]. *)
val headroom_up : Time.t -> t -> Time.t

val pp : Format.formatter -> t -> unit
