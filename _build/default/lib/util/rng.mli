(** Deterministic pseudo-random number generator (splitmix64).

    The workload generators must produce bit-identical designs across runs
    and OCaml versions, so they use this self-contained generator rather
    than [Stdlib.Random]. *)

type t

(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)
val create : int64 -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [next t] draws 64 uniformly random bits and advances the state. *)
val next : t -> int64

(** [int t bound] draws an integer in [[0, bound)). [bound] must be
    positive. *)
val int : t -> int -> int

(** [float t bound] draws a float in [[0, bound)). [bound] must be
    positive. *)
val float : t -> float -> float

(** [bool t] draws a fair coin flip. *)
val bool : t -> bool

(** [choose t items] picks a uniformly random element of a non-empty
    array. *)
val choose : t -> 'a array -> 'a

(** [shuffle t items] permutes the array in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
