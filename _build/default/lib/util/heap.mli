(** Binary min-heap keyed by float priority.

    Used by the critical-path enumerator to produce the K worst paths in
    order of increasing slack. *)

type 'a t

(** [create ()] makes an empty heap. *)
val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

(** [push t ~priority value] inserts [value]. Smaller priorities pop
    first. *)
val push : 'a t -> priority:float -> 'a -> unit

(** [pop t] removes and returns the minimum-priority entry.
    @raise Not_found when the heap is empty. *)
val pop : 'a t -> float * 'a

(** [peek t] returns the minimum-priority entry without removing it.
    @raise Not_found when the heap is empty. *)
val peek : 'a t -> float * 'a
