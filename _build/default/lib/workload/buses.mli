(** Shared-bus designs: clocked tristate drivers with gated enables.

    Exercises the parts of the model the pipelines do not: multi-driver
    bus nets, tristate drivers (modelled like transparent latches), and
    control cones that mix the clock with enable logic fed from
    synchronising elements (enable paths, Section 4). *)

(** [shared_bus ?period ~sources ~width ()] builds a design in which
    [sources] register banks of [width] bits each drive a shared bus
    through clocked tristate drivers; per-source select lines come from a
    select register and gate the drivers' clocks; a capture register reads
    the bus. Returns the design and its single-clock system. *)
val shared_bus :
  ?period:Hb_util.Time.t ->
  sources:int ->
  width:int ->
  unit ->
  Hb_netlist.Design.t * Hb_clock.System.t
