(** Standard clocking schemes for the generated designs. *)

(** [single ~period] — one clock, 40% duty. *)
val single : period:Hb_util.Time.t -> Hb_clock.System.t

(** [two_phase ~period] — non-overlapping phi1/phi2, each 40% of the
    period wide, phi2 half a period after phi1. *)
val two_phase : period:Hb_util.Time.t -> Hb_clock.System.t

(** [four_phase ~period] — c1..c4 at quarter-period offsets, 20% wide —
    the clocking of the paper's Figure 1. *)
val four_phase : period:Hb_util.Time.t -> Hb_clock.System.t

(** [multifrequency ~period] — a base clock plus a 2× and a 4× clock:
    exercises the multi-rate replication path. *)
val multifrequency : period:Hb_util.Time.t -> Hb_clock.System.t
