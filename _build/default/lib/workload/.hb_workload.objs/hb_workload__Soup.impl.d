lib/workload/soup.ml: Cloud Hb_cell Hb_clock Hb_netlist Hb_util List Printf Rtl Stdlib
