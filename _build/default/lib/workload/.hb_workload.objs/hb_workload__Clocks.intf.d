lib/workload/clocks.mli: Hb_clock Hb_util
