lib/workload/falsey.ml: Clocks Hb_cell Hb_netlist Printf Rtl
