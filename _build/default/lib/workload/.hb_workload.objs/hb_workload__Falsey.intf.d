lib/workload/falsey.mli: Hb_clock Hb_netlist Hb_util
