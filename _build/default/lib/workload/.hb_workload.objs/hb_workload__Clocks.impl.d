lib/workload/clocks.ml: Hb_clock List Printf
