lib/workload/soup.mli: Hb_clock Hb_netlist Hb_util
