lib/workload/figures.mli: Hb_clock Hb_netlist Hb_util
