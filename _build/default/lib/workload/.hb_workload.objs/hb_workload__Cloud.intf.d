lib/workload/cloud.mli: Hb_netlist Hb_util
