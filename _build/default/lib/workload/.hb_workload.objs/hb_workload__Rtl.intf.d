lib/workload/rtl.mli: Hb_clock Hb_netlist
