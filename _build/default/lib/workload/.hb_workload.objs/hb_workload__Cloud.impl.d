lib/workload/cloud.ml: Array Hb_netlist Hb_util List Printf Stdlib
