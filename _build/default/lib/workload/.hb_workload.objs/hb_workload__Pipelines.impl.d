lib/workload/pipelines.ml: Clocks Cloud Hb_cell Hb_netlist Hb_util Printf Rtl
