lib/workload/buses.ml: Clocks Hb_cell Hb_netlist List Printf Rtl
