lib/workload/pipelines.mli: Hb_clock Hb_netlist Hb_util
