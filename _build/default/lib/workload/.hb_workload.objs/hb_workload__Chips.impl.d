lib/workload/chips.ml: Clocks Cloud Hb_cell Hb_clock Hb_netlist Hb_util List Printf Rtl
