lib/workload/chips.mli: Hb_clock Hb_netlist Hb_util
