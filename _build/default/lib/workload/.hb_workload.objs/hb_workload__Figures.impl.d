lib/workload/figures.ml: Clocks Hb_cell Hb_clock Hb_netlist List Printf Rtl
