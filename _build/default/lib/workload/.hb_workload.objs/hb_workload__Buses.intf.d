lib/workload/buses.mli: Hb_clock Hb_netlist Hb_util
