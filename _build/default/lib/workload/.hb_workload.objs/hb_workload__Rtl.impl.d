lib/workload/rtl.ml: Hb_clock Hb_netlist List Printf
