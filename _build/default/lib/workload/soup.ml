let random ~seed ?(phases = 3) ?(registers = 8) ?(gates = 60) ?(inputs = 4)
    ?(outputs = 2) ?(period = 100.0) () =
  if phases < 1 then invalid_arg "Soup.random: phases must be >= 1";
  if registers < 1 then invalid_arg "Soup.random: registers must be >= 1";
  let rng = Hb_util.Rng.create seed in
  let system =
    Hb_clock.System.make ~overall_period:period
      (List.init phases (fun i ->
           Hb_clock.Waveform.make
             ~name:(Printf.sprintf "c%d" (i + 1))
             ~multiplier:1
             ~rise:(float_of_int i *. period /. float_of_int phases)
             ~width:(0.7 *. period /. float_of_int phases)))
  in
  let b =
    Hb_netlist.Builder.create ~name:"soup" ~library:(Hb_cell.Library.default ())
  in
  Rtl.add_clock_ports b system;
  let primary = Rtl.input_ports b ~prefix:"pi" ~count:inputs in
  (* Register outputs are cloud inputs; their data inputs come from cloud
     outputs wired up afterwards. *)
  let register_q =
    List.init registers (fun r ->
        let q = Printf.sprintf "rq%d" r in
        let cell = if Hb_util.Rng.bool rng then "dff" else "latch" in
        let phase = 1 + Hb_util.Rng.int rng phases in
        Hb_netlist.Builder.add_instance b ~name:(Printf.sprintf "reg%d" r)
          ~cell
          ~connections:
            [ ("d", Printf.sprintf "rd%d" r);
              ("ck", Printf.sprintf "c%d" phase);
              ("q", q) ]
          ();
        q)
  in
  let cloud_outputs = registers + outputs in
  let cloud =
    Cloud.grow b ~rng ~prefix:"soup" ~inputs:(primary @ register_q)
      ~gates:(Stdlib.max gates cloud_outputs)
      ~outputs:cloud_outputs ()
  in
  (* Wire cloud outputs onto register data inputs and primary outputs. *)
  List.iteri
    (fun i net ->
       if i < registers then
         Hb_netlist.Builder.add_instance b ~name:(Printf.sprintf "rdbuf%d" i)
           ~cell:"buf_x1"
           ~connections:[ ("a", net); ("y", Printf.sprintf "rd%d" i) ]
           ())
    cloud.Cloud.output_nets;
  let output_nets =
    List.filteri (fun i _ -> i >= registers) cloud.Cloud.output_nets
  in
  Rtl.output_ports b ~prefix:"po" output_nets;
  (Hb_netlist.Builder.freeze b, system)
