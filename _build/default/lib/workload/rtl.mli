(** Small structural helpers shared by the design generators. *)

(** [add_clock_ports builder system] declares one clock input port per
    waveform of [system], named after it (the convention the analyser's
    control tracing relies on). *)
val add_clock_ports : Hb_netlist.Builder.t -> Hb_clock.System.t -> unit

(** [input_ports builder ~prefix ~count] declares [count] primary inputs
    ["<prefix><i>"] and returns their net names. *)
val input_ports : Hb_netlist.Builder.t -> prefix:string -> count:int -> string list

(** [output_ports builder ~prefix nets] declares one primary output per
    net, buffering each through a [buf_x2] so the port net has a cell
    driver. *)
val output_ports : Hb_netlist.Builder.t -> prefix:string -> string list -> unit

(** [register_bank builder ~cell ~clock_net ~prefix ~data] instantiates one
    synchroniser (["dff"], ["latch"] or ["tsbuf"]) per data net and returns
    the q-output net names. *)
val register_bank :
  Hb_netlist.Builder.t ->
  cell:string ->
  clock_net:string ->
  prefix:string ->
  data:string list ->
  string list

(** [pad_with_buffers builder ~prefix ~count ~net] adds [count] buffer
    cells loading [net] (used to hit an exact cell-count target). *)
val pad_with_buffers :
  Hb_netlist.Builder.t -> prefix:string -> count:int -> net:string -> unit
