let shared_bus ?(period = 100.0) ~sources ~width () =
  if sources < 2 then invalid_arg "Buses.shared_bus: need at least 2 sources";
  if width < 1 then invalid_arg "Buses.shared_bus: need at least 1 bit";
  let system = Clocks.single ~period in
  let b =
    Hb_netlist.Builder.create ~name:"shared_bus"
      ~library:(Hb_cell.Library.default ())
  in
  Rtl.add_clock_ports b system;
  (* Select register: one hot line per source, driven from primary
     inputs. *)
  let select_in = Rtl.input_ports b ~prefix:"sel" ~count:sources in
  let select =
    Rtl.register_bank b ~cell:"dff" ~clock_net:"clk" ~prefix:"rsel"
      ~data:select_in
  in
  (* Gated driver clocks: enable AND clock. *)
  let gated =
    List.mapi
      (fun s sel ->
         let out = Printf.sprintf "gck%d" s in
         Hb_netlist.Builder.add_instance b ~name:(Printf.sprintf "gate%d" s)
           ~cell:"and2_x2"
           ~connections:[ ("a", "clk"); ("b", sel); ("y", out) ]
           ();
         out)
      select
  in
  (* Source registers and their tristate drivers onto the bus bits. *)
  List.iteri
    (fun s gck ->
       let data_in =
         Rtl.input_ports b ~prefix:(Printf.sprintf "d%d_" s) ~count:width
       in
       let registered =
         Rtl.register_bank b ~cell:"dff" ~clock_net:"clk"
           ~prefix:(Printf.sprintf "src%d" s) ~data:data_in
       in
       List.iteri
         (fun bit q ->
            Hb_netlist.Builder.add_instance b
              ~name:(Printf.sprintf "ts%d_%d" s bit)
              ~cell:"tsbuf"
              ~connections:
                [ ("d", q); ("ck", gck); ("q", Printf.sprintf "bus%d" bit) ]
              ())
         registered)
    gated;
  (* Capture register reads the bus. *)
  let bus = List.init width (fun bit -> Printf.sprintf "bus%d" bit) in
  let captured =
    Rtl.register_bank b ~cell:"dff" ~clock_net:"clk" ~prefix:"cap" ~data:bus
  in
  Rtl.output_ports b ~prefix:"q" captured;
  (Hb_netlist.Builder.freeze b, system)
