(** Designs with provably false critical paths.

    The reconvergence pattern that defeats the block method's pessimism
    bound: the launch register's only path traverses [nand(_, s)] and
    later [nor(_, s)], so propagating along it needs the shared side net
    both high and low — the path cannot be sensitised, yet block analysis
    charges its full delay. Used by the false-path ablation (A7). *)

(** [conflict_chain ?period ~head ~tail ()] builds the pattern with [head]
    buffers before the conflicting pair and [tail] buffers between them.
    Returns the design, its clock system and the name of the capture
    register whose worst path is false ("ff2"). *)
val conflict_chain :
  ?period:Hb_util.Time.t ->
  head:int ->
  tail:int ->
  unit ->
  Hb_netlist.Design.t * Hb_clock.System.t * string
