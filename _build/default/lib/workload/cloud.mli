(** Random combinational logic clouds.

    The building block of every synthetic design: a seeded, deterministic
    DAG of standard cells grown over a set of input nets. Gates only ever
    consume nets that already exist, so clouds are acyclic by
    construction. *)

type t = {
  output_nets : string list;  (** the cloud's designated outputs *)
  gate_count : int;           (** gates actually instantiated *)
}

(** [grow builder ~rng ~prefix ~inputs ~gates ~outputs ?module_path ()]
    adds [gates] random combinational cells to [builder]. Cell inputs are
    drawn from [inputs] plus previously created gate outputs, with a bias
    towards recent nets (yielding deep, narrow clouds like synthesised
    logic). The [outputs] designated nets are drawn from the last layer.
    [prefix] namespaces instance and net names.

    @raise Invalid_argument when [inputs] is empty, or [gates < outputs],
    or [outputs < 1]. *)
val grow :
  Hb_netlist.Builder.t ->
  rng:Hb_util.Rng.t ->
  prefix:string ->
  inputs:string list ->
  gates:int ->
  outputs:int ->
  ?module_path:string ->
  unit ->
  t
