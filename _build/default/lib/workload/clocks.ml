let single ~period =
  Hb_clock.System.make ~overall_period:period
    [ Hb_clock.Waveform.make ~name:"clk" ~multiplier:1 ~rise:0.0
        ~width:(0.4 *. period) ]

let two_phase ~period =
  Hb_clock.System.make ~overall_period:period
    [ Hb_clock.Waveform.make ~name:"phi1" ~multiplier:1 ~rise:0.0
        ~width:(0.4 *. period);
      Hb_clock.Waveform.make ~name:"phi2" ~multiplier:1 ~rise:(0.5 *. period)
        ~width:(0.4 *. period);
    ]

let four_phase ~period =
  Hb_clock.System.make ~overall_period:period
    (List.init 4 (fun i ->
         Hb_clock.Waveform.make
           ~name:(Printf.sprintf "c%d" (i + 1))
           ~multiplier:1
           ~rise:(float_of_int i *. 0.25 *. period)
           ~width:(0.2 *. period)))

let multifrequency ~period =
  Hb_clock.System.make ~overall_period:period
    [ Hb_clock.Waveform.make ~name:"clk1" ~multiplier:1 ~rise:0.0
        ~width:(0.4 *. period);
      Hb_clock.Waveform.make ~name:"clk2" ~multiplier:2 ~rise:0.0
        ~width:(0.2 *. period);
      Hb_clock.Waveform.make ~name:"clk4" ~multiplier:4 ~rise:0.0
        ~width:(0.1 *. period);
    ]
