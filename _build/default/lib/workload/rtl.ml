let add_clock_ports builder system =
  List.iter
    (fun w ->
       Hb_netlist.Builder.add_port builder ~name:w.Hb_clock.Waveform.name
         ~direction:Hb_netlist.Design.Port_in ~is_clock:true)
    system.Hb_clock.System.waveforms

let input_ports builder ~prefix ~count =
  List.init count (fun i ->
      let name = Printf.sprintf "%s%d" prefix i in
      Hb_netlist.Builder.add_port builder ~name
        ~direction:Hb_netlist.Design.Port_in ~is_clock:false;
      name)

let output_ports builder ~prefix nets =
  List.iteri
    (fun i net ->
       let port = Printf.sprintf "%s%d" prefix i in
       Hb_netlist.Builder.add_port builder ~name:port
         ~direction:Hb_netlist.Design.Port_out ~is_clock:false;
       Hb_netlist.Builder.add_instance builder
         ~name:(Printf.sprintf "%s%d_drv" prefix i)
         ~cell:"buf_x2"
         ~connections:[ ("a", net); ("y", port) ]
         ())
    nets

let register_bank builder ~cell ~clock_net ~prefix ~data =
  List.mapi
    (fun i d ->
       let q = Printf.sprintf "%s_q%d" prefix i in
       Hb_netlist.Builder.add_instance builder
         ~name:(Printf.sprintf "%s_r%d" prefix i)
         ~cell
         ~connections:[ ("d", d); ("ck", clock_net); ("q", q) ]
         ();
       q)
    data

let pad_with_buffers builder ~prefix ~count ~net =
  for i = 0 to count - 1 do
    Hb_netlist.Builder.add_instance builder
      ~name:(Printf.sprintf "%s_pad%d" prefix i)
      ~cell:"buf_x1"
      ~connections:[ ("a", net); ("y", Printf.sprintf "%s_padn%d" prefix i) ]
      ()
  done
