(** Fixed configurations reproducing the paper's illustrative figures. *)

(** [figure1 ?period ()] — the paper's Figure 1: four transparent latches
    controlled by four different clock phases feed one logic cone whose
    output drives latches on two of the phases. The logic is "time
    multiplexed within each overall clock period": its output must settle
    to two different valid states per cycle, so the minimum number of
    analysis passes for the cluster is 2 while per-source-edge accounting
    needs 4. *)
val figure1 :
  ?period:Hb_util.Time.t -> unit -> Hb_netlist.Design.t * Hb_clock.System.t

(** [figure4_edges ()] — the clock waveforms of the paper's Figure 4: two
    clocks yielding the eight edges A…H used in the worked break-open
    example. Returns the system together with the figure's edge labels in
    circular order. *)
val figure4_edges : unit -> Hb_clock.System.t * (string * Hb_clock.Edge.t) list
