let conflict_chain ?(period = 100.0) ~head ~tail () =
  if head < 1 || tail < 1 then
    invalid_arg "Falsey.conflict_chain: head and tail must be >= 1";
  let system = Clocks.single ~period in
  let b =
    Hb_netlist.Builder.create ~name:"false_path_demo"
      ~library:(Hb_cell.Library.default ())
  in
  Rtl.add_clock_ports b system;
  Hb_netlist.Builder.add_port b ~name:"din"
    ~direction:Hb_netlist.Design.Port_in ~is_clock:false;
  Hb_netlist.Builder.add_port b ~name:"sel"
    ~direction:Hb_netlist.Design.Port_in ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"ffs" ~cell:"dff"
    ~connections:[ ("d", "sel"); ("ck", "clk"); ("q", "s") ] ();
  Hb_netlist.Builder.add_instance b ~name:"ff1" ~cell:"dff"
    ~connections:[ ("d", "din"); ("ck", "clk"); ("q", "h0") ] ();
  for i = 0 to head - 1 do
    Hb_netlist.Builder.add_instance b ~name:(Printf.sprintf "head%d" i)
      ~cell:"buf_x1"
      ~connections:
        [ ("a", Printf.sprintf "h%d" i); ("y", Printf.sprintf "h%d" (i + 1)) ]
      ()
  done;
  Hb_netlist.Builder.add_instance b ~name:"g_mid1" ~cell:"nand2_x1"
    ~connections:[ ("a", Printf.sprintf "h%d" head); ("b", "s"); ("y", "m0") ]
    ();
  for i = 0 to tail - 1 do
    Hb_netlist.Builder.add_instance b ~name:(Printf.sprintf "tail%d" i)
      ~cell:"buf_x1"
      ~connections:
        [ ("a", Printf.sprintf "m%d" i); ("y", Printf.sprintf "m%d" (i + 1)) ]
      ()
  done;
  Hb_netlist.Builder.add_instance b ~name:"g_mid2" ~cell:"nor2_x1"
    ~connections:
      [ ("a", Printf.sprintf "m%d" tail); ("b", "s"); ("y", "d2") ]
    ();
  Hb_netlist.Builder.add_instance b ~name:"ff2" ~cell:"dff"
    ~connections:[ ("d", "d2"); ("ck", "clk"); ("q", "qq") ] ();
  (Hb_netlist.Builder.freeze b, system, "ff2")
