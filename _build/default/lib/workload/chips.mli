(** The four designs of the paper's Table 1, rebuilt synthetically at the
    reported cell counts.

    The originals (a data-encryption chip, a CPU ALU slice, a 12-bit state
    machine in flat and hierarchical form) are not available; these
    generators produce deterministic designs with the same cell counts and
    comparable structure, which is what Table 1's run times scale with. *)

(** [des ?period ()] — DES-like iterative data-encryption datapath:
    64-bit state and 56-bit key registers, input muxing, expansion/key
    xors, eight S-box logic clouds, permutation mixing, key schedule and a
    round-counter FSM; padded to exactly 3681 cells. Single-clock
    flip-flop design. *)
val des : ?period:Hb_util.Time.t -> unit -> Hb_netlist.Design.t * Hb_clock.System.t

(** [alu ?period ()] — 32-bit ALU slice: operand and opcode registers,
    carry-propagate adder, logic unit, shifter, result selection and
    flags; padded to exactly 899 cells. *)
val alu : ?period:Hb_util.Time.t -> unit -> Hb_netlist.Design.t * Hb_clock.System.t

(** [dsp ?period ()] — a multirate DSP-style datapath (the paper's
    abstract describes the 3681-cell example as "a digital signal
    processing chip"): a 4-tap FIR-like pipeline whose input side runs on
    a 2x clock and whose accumulator side runs on the base clock, with
    transparent latches between the domains. Exercises multi-frequency
    replication at four-digit cell counts. *)
val dsp : ?period:Hb_util.Time.t -> unit -> Hb_netlist.Design.t * Hb_clock.System.t

(** [sm1f ?period ()] — 12-bit finite state machine, flattened. *)
val sm1f : ?period:Hb_util.Time.t -> unit -> Hb_netlist.Design.t * Hb_clock.System.t

(** [sm1h ?period ()] — the same machine with its combinational logic
    contained in a single module, then collapsed to a macro — the
    hierarchical description of Table 1. *)
val sm1h : ?period:Hb_util.Time.t -> unit -> Hb_netlist.Design.t * Hb_clock.System.t
