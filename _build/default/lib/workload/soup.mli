(** Random mixed synchronous designs ("soups") for stress testing.

    Unlike the structured pipelines, a soup places a configurable number
    of registers of random kinds (flip-flops and transparent latches) on
    random phases of an n-phase clock, grows one random combinational
    cloud over all register outputs and primary inputs, and feeds every
    register input and a few primary outputs from the cloud. The result
    exercises multi-phase paths in arbitrary directions — including
    same-phase latch-to-latch and backward-phase paths that need the
    full break-open machinery — while staying acyclic in its
    combinational logic by construction. *)

(** [random ~seed ?phases ?registers ?gates ?inputs ?outputs ()] builds a
    deterministic random design and its clock system. Defaults: 3 phases,
    8 registers, 60 gates, 4 primary inputs, 2 primary outputs. *)
val random :
  seed:int64 ->
  ?phases:int ->
  ?registers:int ->
  ?gates:int ->
  ?inputs:int ->
  ?outputs:int ->
  ?period:Hb_util.Time.t ->
  unit ->
  Hb_netlist.Design.t * Hb_clock.System.t
