type t = {
  output_nets : string list;
  gate_count : int;
}

(* Gate mix: (cell base name, input pin names). Drive variants are chosen
   randomly among x1/x2/x4. *)
let gate_mix =
  [| ("inv", [ "a" ]);
     ("nand2", [ "a"; "b" ]);
     ("nand2", [ "a"; "b" ]);
     ("nor2", [ "a"; "b" ]);
     ("nand3", [ "a"; "b"; "c" ]);
     ("xor2", [ "a"; "b" ]);
     ("aoi22", [ "a"; "b"; "c"; "d" ]);
     ("mux2", [ "a"; "b"; "c" ]);
  |]

let drives = [| 1; 2; 4 |]

(* Pick an input net with a bias towards the most recent entries: index
   drawn as max of two uniforms. *)
let biased_pick rng pool count =
  let a = Hb_util.Rng.int rng count in
  let b = Hb_util.Rng.int rng count in
  pool.(Stdlib.max a b)

let grow builder ~rng ~prefix ~inputs ~gates ~outputs ?(module_path = "") () =
  if inputs = [] then invalid_arg "Cloud.grow: no input nets";
  if outputs < 1 then invalid_arg "Cloud.grow: outputs must be >= 1";
  if gates < outputs then invalid_arg "Cloud.grow: gates < outputs";
  let capacity = List.length inputs + gates in
  let pool = Array.make capacity "" in
  List.iteri (fun i net -> pool.(i) <- net) inputs;
  let count = ref (List.length inputs) in
  for g = 0 to gates - 1 do
    let base, pins = gate_mix.(Hb_util.Rng.int rng (Array.length gate_mix)) in
    let drive = drives.(Hb_util.Rng.int rng (Array.length drives)) in
    let cell = Printf.sprintf "%s_x%d" base drive in
    let out_net = Printf.sprintf "%s_n%d" prefix g in
    let connections =
      ("y", out_net)
      :: List.map (fun pin -> (pin, biased_pick rng pool !count)) pins
    in
    Hb_netlist.Builder.add_instance builder ~module_path
      ~name:(Printf.sprintf "%s_g%d" prefix g)
      ~cell ~connections ();
    pool.(!count) <- out_net;
    incr count
  done;
  (* Outputs: the last [outputs] created nets, which depend on the deepest
     logic. *)
  let output_nets =
    List.init outputs (fun i ->
        Printf.sprintf "%s_n%d" prefix (gates - outputs + i))
  in
  { output_nets; gate_count = gates }
