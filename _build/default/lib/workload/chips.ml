(* Instance counting: every construction below reports how many cells it
   added so the totals can be padded to the exact Table 1 figures. *)

type counted = {
  builder : Hb_netlist.Builder.t;
  mutable cells : int;
}

let fresh name =
  { builder =
      Hb_netlist.Builder.create ~name ~library:(Hb_cell.Library.default ());
    cells = 0;
  }

let registers c ~cell ~clock_net ~prefix ~data =
  c.cells <- c.cells + List.length data;
  Rtl.register_bank c.builder ~cell ~clock_net ~prefix ~data

let cloud c ~rng ~prefix ~inputs ~gates ~outputs =
  c.cells <- c.cells + gates;
  (Cloud.grow c.builder ~rng ~prefix ~inputs ~gates ~outputs ()).Cloud.output_nets

let gate c ~name ~cell ~connections =
  c.cells <- c.cells + 1;
  Hb_netlist.Builder.add_instance c.builder ~name ~cell ~connections ()

let outputs c ~prefix nets =
  c.cells <- c.cells + List.length nets;
  Rtl.output_ports c.builder ~prefix nets

let pad_to c ~target ~net =
  if c.cells > target then
    invalid_arg
      (Printf.sprintf "Chips: %d cells exceeds target %d" c.cells target);
  Rtl.pad_with_buffers c.builder ~prefix:"fill" ~count:(target - c.cells) ~net;
  c.cells <- target

(* Pairwise xor of two equal-length net lists. *)
let xor_layer c ~prefix a b =
  List.mapi
    (fun i (x, y) ->
       let out = Printf.sprintf "%s_x%d" prefix i in
       gate c ~name:(Printf.sprintf "%s_g%d" prefix i) ~cell:"xor2_x1"
         ~connections:[ ("a", x); ("b", y); ("y", out) ];
       out)
    (List.combine a b)

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec cycle_to n source =
  if n <= 0 then []
  else if n <= List.length source then take n source
  else source @ cycle_to (n - List.length source) source

let des ?(period = 100.0) () =
  let system = Clocks.single ~period in
  let c = fresh "des" in
  let rng = Hb_util.Rng.create 2001L in
  Rtl.add_clock_ports c.builder system;
  let data_in = Rtl.input_ports c.builder ~prefix:"din" ~count:64 in
  let key_in = Rtl.input_ports c.builder ~prefix:"kin" ~count:56 in
  Hb_netlist.Builder.add_port c.builder ~name:"load"
    ~direction:Hb_netlist.Design.Port_in ~is_clock:false;
  (* Input selection: load new block or iterate the round output. *)
  let state_d =
    List.mapi
      (fun i din ->
         let out = Printf.sprintf "sin%d" i in
         gate c ~name:(Printf.sprintf "inmux%d" i) ~cell:"mux2_x1"
           ~connections:
             [ ("a", din); ("b", Printf.sprintf "round%d" i); ("c", "load");
               ("y", out) ];
         out)
      data_in
  in
  let state = registers c ~cell:"dff" ~clock_net:"clk" ~prefix:"st" ~data:state_d in
  let key_state = registers c ~cell:"dff" ~clock_net:"clk" ~prefix:"ky" ~data:key_in in
  (* Key schedule: rotates and selects 48 round-key bits. *)
  let round_key =
    cloud c ~rng ~prefix:"ks" ~inputs:key_state ~gates:420 ~outputs:48
  in
  (* Right half expanded to 48 bits and xored with the round key. *)
  let right = cycle_to 48 (List.filteri (fun i _ -> i >= 32) state) in
  let expanded = xor_layer c ~prefix:"exp" right round_key in
  (* Eight S-boxes: 6 inputs -> 4 outputs each. *)
  let sbox_out =
    List.concat
      (List.init 8 (fun s ->
           let ins = List.filteri (fun i _ -> i / 6 = s) expanded in
           cloud c ~rng ~prefix:(Printf.sprintf "sb%d" s) ~inputs:ins
             ~gates:330 ~outputs:4))
  in
  (* P permutation mixing and xor with the left half. *)
  let mixed = cloud c ~rng ~prefix:"pp" ~inputs:sbox_out ~gates:120 ~outputs:32 in
  let left = take 32 state in
  let new_right = xor_layer c ~prefix:"fx" left mixed in
  (* Round output: swapped halves feed the state muxes. *)
  let right_named = take 32 (List.filteri (fun i _ -> i >= 32) state) in
  List.iteri
    (fun i net ->
       gate c ~name:(Printf.sprintf "sw%d" i) ~cell:"buf_x1"
         ~connections:[ ("a", net); ("y", Printf.sprintf "round%d" i) ])
    (right_named @ new_right);
  (* Round counter and control. The cloud consumes the very nets the
     register bank drives (register_bank names its outputs cnt_q<i>), so
     the counter loop closes without extra wiring. *)
  let counter_q = List.init 5 (fun i -> Printf.sprintf "cnt_q%d" i) in
  let counter_d =
    cloud c ~rng ~prefix:"ctl" ~inputs:("load" :: counter_q) ~gates:55 ~outputs:5
  in
  let _ = registers c ~cell:"dff" ~clock_net:"clk" ~prefix:"cnt" ~data:counter_d in
  outputs c ~prefix:"dout" (take 64 state);
  pad_to c ~target:3681 ~net:(List.nth state 0);
  (Hb_netlist.Builder.freeze c.builder, system)

let alu ?(period = 100.0) () =
  let system = Clocks.single ~period in
  let c = fresh "alu" in
  let rng = Hb_util.Rng.create 3003L in
  Rtl.add_clock_ports c.builder system;
  let a_in = Rtl.input_ports c.builder ~prefix:"a" ~count:32 in
  let b_in = Rtl.input_ports c.builder ~prefix:"b" ~count:32 in
  let op_in = Rtl.input_ports c.builder ~prefix:"op" ~count:4 in
  let a_reg = registers c ~cell:"dff" ~clock_net:"clk" ~prefix:"ra" ~data:a_in in
  let b_reg = registers c ~cell:"dff" ~clock_net:"clk" ~prefix:"rb" ~data:b_in in
  let op_reg = registers c ~cell:"dff" ~clock_net:"clk" ~prefix:"rop" ~data:op_in in
  (* Ripple-carry adder: per bit sum xor pair + majority carry. *)
  let carry = ref "rop_q0" in
  let sums =
    List.mapi
      (fun i (x, y) ->
         let sum1 = Printf.sprintf "add_s1_%d" i in
         let sum = Printf.sprintf "add_s_%d" i in
         let cout = Printf.sprintf "add_c_%d" i in
         gate c ~name:(Printf.sprintf "add_x1_%d" i) ~cell:"xor2_x1"
           ~connections:[ ("a", x); ("b", y); ("y", sum1) ];
         gate c ~name:(Printf.sprintf "add_x2_%d" i) ~cell:"xor2_x1"
           ~connections:[ ("a", sum1); ("b", !carry); ("y", sum) ];
         gate c ~name:(Printf.sprintf "add_mj_%d" i) ~cell:"maj3_x1"
           ~connections:[ ("a", x); ("b", y); ("c", !carry); ("y", cout) ];
         carry := cout;
         sum)
      (List.combine a_reg b_reg)
  in
  (* Logic unit and shifter as clouds over both operands. *)
  let logic_out =
    cloud c ~rng ~prefix:"lu" ~inputs:(a_reg @ b_reg @ op_reg) ~gates:200
      ~outputs:32
  in
  let shift_out =
    cloud c ~rng ~prefix:"sh" ~inputs:(a_reg @ op_reg) ~gates:170 ~outputs:32
  in
  (* Result selection. *)
  let result =
    List.mapi
      (fun i ((s, l), sh) ->
         let m1 = Printf.sprintf "res_m1_%d" i in
         let out = Printf.sprintf "res_%d" i in
         gate c ~name:(Printf.sprintf "rmux1_%d" i) ~cell:"mux2_x1"
           ~connections:[ ("a", s); ("b", l); ("c", "rop_q1"); ("y", m1) ];
         gate c ~name:(Printf.sprintf "rmux2_%d" i) ~cell:"mux2_x1"
           ~connections:[ ("a", m1); ("b", sh); ("c", "rop_q2"); ("y", out) ];
         out)
      (List.combine (List.combine sums logic_out) shift_out)
  in
  let result_reg =
    registers c ~cell:"dff" ~clock_net:"clk" ~prefix:"rr" ~data:result
  in
  (* Flags: zero/negative/carry summarised by a small cloud. *)
  let flags = cloud c ~rng ~prefix:"fl" ~inputs:result ~gates:40 ~outputs:3 in
  let flags_reg =
    registers c ~cell:"dff" ~clock_net:"clk" ~prefix:"rf" ~data:flags
  in
  outputs c ~prefix:"r" result_reg;
  outputs c ~prefix:"f" flags_reg;
  pad_to c ~target:899 ~net:(List.nth result_reg 0);
  (Hb_netlist.Builder.freeze c.builder, system)

let dsp ?(period = 320.0) () =
  (* Two harmonically related clocks: the sample side at twice the base
     rate, the accumulate side at the base rate. *)
  let system =
    Hb_clock.System.make ~overall_period:period
      [ Hb_clock.Waveform.make ~name:"fck" ~multiplier:2 ~rise:0.0
          ~width:(0.2 *. period);
        Hb_clock.Waveform.make ~name:"sck" ~multiplier:1 ~rise:(0.7 *. period)
          ~width:(0.25 *. period);
      ]
  in
  let c = fresh "dsp" in
  let rng = Hb_util.Rng.create 6006L in
  Rtl.add_clock_ports c.builder system;
  let width = 16 in
  let sample_in = Rtl.input_ports c.builder ~prefix:"x" ~count:width in
  (* Fast domain: a 4-deep sample delay line on the 2x clock. *)
  let taps =
    let rec line stage data acc =
      if stage >= 4 then List.rev acc
      else begin
        let q =
          registers c ~cell:"dff" ~clock_net:"fck"
            ~prefix:(Printf.sprintf "dl%d" stage) ~data
        in
        line (stage + 1) q (q :: acc)
      end
    in
    line 0 sample_in []
  in
  (* Per-tap coefficient multiply stand-ins: logic clouds. *)
  let products =
    List.mapi
      (fun i tap ->
         cloud c ~rng ~prefix:(Printf.sprintf "mul%d" i) ~inputs:tap
           ~gates:60 ~outputs:width)
      taps
  in
  (* Cross into the slow domain through transparent latches. *)
  let latched =
    List.mapi
      (fun i product ->
         registers c ~cell:"latch" ~clock_net:"sck"
           ~prefix:(Printf.sprintf "xd%d" i) ~data:product)
      products
  in
  (* Adder tree in the slow domain. *)
  let rec tree level = function
    | [] -> invalid_arg "dsp: empty tree"
    | [ last ] -> last
    | a :: b :: rest ->
      let sum =
        cloud c ~rng ~prefix:(Printf.sprintf "add%d_%d" level (List.length rest))
          ~inputs:(a @ b) ~gates:120 ~outputs:width
      in
      tree (level + 1) (rest @ [ sum ])
  in
  let sum = tree 0 latched in
  let accumulator_q = List.init width (fun i -> Printf.sprintf "acc_q%d" i) in
  let next_acc =
    cloud c ~rng ~prefix:"accadd" ~inputs:(sum @ accumulator_q) ~gates:150
      ~outputs:width
  in
  (* The register bank's q nets are exactly the acc_q names the cloud
     consumed, closing the accumulator loop directly. *)
  let acc = registers c ~cell:"dff" ~clock_net:"sck" ~prefix:"acc" ~data:next_acc in
  ignore accumulator_q;
  outputs c ~prefix:"y" acc;
  (Hb_netlist.Builder.freeze c.builder, system)

let fsm ~hierarchical ?(period = 100.0) () =
  let system = Clocks.single ~period in
  let c = fresh (if hierarchical then "sm1h" else "sm1f") in
  let rng = Hb_util.Rng.create 4004L in
  Rtl.add_clock_ports c.builder system;
  let ins = Rtl.input_ports c.builder ~prefix:"i" ~count:8 in
  let state_q = List.init 12 (fun i -> Printf.sprintf "sq%d" i) in
  let module_path = if hierarchical then "ns_logic" else "" in
  let next =
    c.cells <- c.cells + 260;
    (Cloud.grow c.builder ~rng ~prefix:"ns" ~inputs:(ins @ state_q) ~gates:260
       ~outputs:20 ~module_path ())
      .Cloud.output_nets
  in
  let next_state = take 12 next in
  let moore_out = List.filteri (fun i _ -> i >= 12) next in
  let state =
    registers c ~cell:"dff" ~clock_net:"clk" ~prefix:"st" ~data:next_state
  in
  (* Close the loop: buffer the register outputs onto the names the cloud
     consumed. *)
  List.iteri
    (fun i q ->
       gate c ~name:(Printf.sprintf "fb%d" i) ~cell:"buf_x1"
         ~connections:[ ("a", List.nth state i); ("y", q) ])
    state_q;
  outputs c ~prefix:"o" moore_out;
  let design = Hb_netlist.Builder.freeze c.builder in
  let design =
    if hierarchical then Hb_netlist.Hierarchy.collapse design else design
  in
  (design, system)

let sm1f ?period () = fsm ~hierarchical:false ?period ()
let sm1h ?period () = fsm ~hierarchical:true ?period ()
