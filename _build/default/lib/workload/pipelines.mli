(** Parameterised pipeline generators. *)

(** [two_phase ?seed ?period ~width ~stages ~gates_per_stage ()] builds the
    classic level-sensitive two-phase pipeline: primary inputs, then
    alternating phi1/phi2 transparent-latch banks with a random logic
    cloud between consecutive banks, then primary outputs. [stages] counts
    latch banks (>= 2). Returns the design with its clock system. *)
val two_phase :
  ?seed:int64 ->
  ?period:Hb_util.Time.t ->
  width:int ->
  stages:int ->
  gates_per_stage:int ->
  unit ->
  Hb_netlist.Design.t * Hb_clock.System.t

(** [edge_ff ?seed ?period ~width ~stages ~gates_per_stage ()] is the
    single-clock flip-flop variant. *)
val edge_ff :
  ?seed:int64 ->
  ?period:Hb_util.Time.t ->
  width:int ->
  stages:int ->
  gates_per_stage:int ->
  unit ->
  Hb_netlist.Design.t * Hb_clock.System.t

(** [latch_ring ?period ~gates ()] builds the paper's cyclic configuration:
    two transparent latch banks on opposite phases closed into a loop
    through two logic clouds, so the too-slow combinational paths form a
    directed cycle traversing the latches. A primary input seeds the loop
    through an extra mux; a primary output observes it. *)
val latch_ring :
  ?period:Hb_util.Time.t ->
  gates:int ->
  unit ->
  Hb_netlist.Design.t * Hb_clock.System.t
