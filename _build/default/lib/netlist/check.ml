type severity = Warning | Error

type finding = {
  severity : severity;
  rule : string;
  subject : string;
  message : string;
}

let finding severity rule subject fmt =
  Format.kasprintf (fun message -> { severity; rule; subject; message }) fmt

let dangling_outputs design =
  let findings = ref [] in
  for net_id = 0 to Design.net_count design - 1 do
    let net = Design.net design net_id in
    if net.Design.loads = [] then begin
      let from_cell =
        List.exists
          (function Design.Pin _ -> true | Design.Port _ -> false)
          net.Design.drivers
      in
      if from_cell then
        findings :=
          finding Warning "dangling-output" net.Design.net_name
            "net %s is driven but has no loads" net.Design.net_name
          :: !findings
    end
  done;
  List.rev !findings

let unused_inputs design =
  let findings = ref [] in
  for p = 0 to Design.port_count design - 1 do
    let port = Design.port design p in
    if port.Design.direction = Design.Port_in && not port.Design.is_clock then
      match Design.net_of_port design p with
      | None ->
        findings :=
          finding Warning "unused-input" port.Design.port_name
            "input port %s is not attached to any net" port.Design.port_name
          :: !findings
      | Some net_id ->
        if (Design.net design net_id).Design.loads = [] then
          findings :=
            finding Warning "unused-input" port.Design.port_name
              "input port %s drives nothing" port.Design.port_name
            :: !findings
  done;
  List.rev !findings

let high_fanout ?(limit = 16) design =
  let findings = ref [] in
  for net_id = 0 to Design.net_count design - 1 do
    let net = Design.net design net_id in
    let fanout = List.length net.Design.loads in
    if fanout > limit then
      findings :=
        finding Warning "high-fanout" net.Design.net_name
          "net %s has %d loads (limit %d)" net.Design.net_name fanout limit
        :: !findings
  done;
  List.rev !findings

(* Pin role of an endpoint, when it is a pin. *)
let endpoint_role design = function
  | Design.Port _ -> None
  | Design.Pin { inst; pin } ->
    let cell = (Design.instance design inst).Design.cell in
    (match Hb_cell.Cell.find_pin cell pin with
     | Some p -> Some p.Hb_cell.Cell.role
     | None -> None)

let clock_as_data design =
  let findings = ref [] in
  List.iter
    (fun p ->
       match Design.net_of_port design p with
       | None -> ()
       | Some net_id ->
         let net = Design.net design net_id in
         let data_loads =
           List.filter
             (fun endpoint ->
                endpoint_role design endpoint = Some Hb_cell.Cell.Data_in)
             net.Design.loads
         in
         List.iter
           (fun endpoint ->
              findings :=
                finding Warning "clock-as-data"
                  (Design.endpoint_to_string design endpoint)
                  "clock %s feeds data pin %s (no arrival is modelled on clock nets)"
                  (Design.port design p).Design.port_name
                  (Design.endpoint_to_string design endpoint)
                :: !findings)
           data_loads)
    (Design.clock_ports design);
  List.rev !findings

(* A tiny local cone walk: does any clock port reach the control pin? The
   full monotonicity analysis lives in the analyser's control tracer; this
   rule only answers reachability so the netlist library stays
   self-contained. *)
let clock_reaches design ~control_net =
  let visited = Hashtbl.create 16 in
  let rec walk net =
    if Hashtbl.mem visited net then false
    else begin
      Hashtbl.add visited net ();
      List.exists
        (fun driver ->
           match driver with
           | Design.Port p -> (Design.port design p).Design.is_clock
           | Design.Pin { inst; pin = _ } ->
             let cell = (Design.instance design inst).Design.cell in
             Hb_cell.Kind.is_comb cell.Hb_cell.Cell.kind
             && List.exists
                  (fun input ->
                     match
                       Design.net_of_pin design ~inst
                         ~pin:input.Hb_cell.Cell.pin_name
                     with
                     | Some upstream -> walk upstream
                     | None -> false)
                  (Hb_cell.Cell.input_pins cell))
        (Design.net design net).Design.drivers
    end
  in
  walk control_net

let data_as_control design =
  List.filter_map
    (fun inst ->
       let record = Design.instance design inst in
       let cell = record.Design.cell in
       match Hb_cell.Cell.control_pins cell with
       | [] -> None
       | pin :: _ ->
         (match
            Design.net_of_pin design ~inst ~pin:pin.Hb_cell.Cell.pin_name
          with
          | None -> None
          | Some control_net ->
            if clock_reaches design ~control_net then None
            else
              Some
                (finding Error "data-as-control" record.Design.inst_name
                   "control cone of %s contains no clock port"
                   record.Design.inst_name)))
    (Design.sync_instances design)

let self_loop design =
  List.filter_map
    (fun inst ->
       let record = Design.instance design inst in
       let cell = record.Design.cell in
       let output_nets =
         List.filter_map
           (fun pin ->
              Design.net_of_pin design ~inst ~pin:pin.Hb_cell.Cell.pin_name)
           (Hb_cell.Cell.output_pins cell)
       in
       let feeds_itself =
         List.exists
           (fun pin ->
              match
                Design.net_of_pin design ~inst ~pin:pin.Hb_cell.Cell.pin_name
              with
              | Some net -> List.mem net output_nets
              | None -> false)
           (Hb_cell.Cell.input_pins cell)
       in
       if feeds_itself then
         Some
           (finding Error "self-loop" record.Design.inst_name
              "combinational instance %s feeds itself" record.Design.inst_name)
       else None)
    (Design.comb_instances design)

let run design =
  let all =
    data_as_control design @ self_loop design @ dangling_outputs design
    @ unused_inputs design @ clock_as_data design @ high_fanout design
  in
  List.stable_sort
    (fun a b ->
       compare
         (match a.severity with Error -> 0 | Warning -> 1)
         (match b.severity with Error -> 0 | Warning -> 1))
    all

let pp_finding ppf f =
  Format.fprintf ppf "%s [%s] %s"
    (match f.severity with Error -> "error" | Warning -> "warning")
    f.rule f.message
