module String_map = Map.Make (String)
module Int_set = Set.Make (Int)

let module_paths design =
  let paths = ref String_map.empty in
  Array.iter
    (fun inst ->
       if inst.Design.module_path <> "" then
         paths := String_map.add inst.Design.module_path () !paths)
    design.Design.instances;
  List.map fst (String_map.bindings !paths)

(* Worst and best propagation delay of one instance arc, evaluated at the
   load of the net its output drives. *)
let arc_delays design inst_id (arc : Hb_cell.Cell.timing_arc) =
  match Design.net_of_pin design ~inst:inst_id ~pin:arc.Hb_cell.Cell.to_pin with
  | None -> None
  | Some net ->
    let load = (Design.net design net).Design.load_capacitance in
    Some
      ( Hb_cell.Delay_model.worst arc.Hb_cell.Cell.delay ~load,
        Hb_cell.Delay_model.best arc.Hb_cell.Cell.delay ~load )

(* Longest/shortest delay from each module-input net to each module-output
   net, by relaxation over a topological order of the module's internal
   net graph. *)
let module_arc_delays design ~members ~input_nets ~output_nets =
  let member_set = Int_set.of_list members in
  (* Map net id -> dense index over nets touching the module. *)
  let net_index = Hashtbl.create 64 in
  let nets = ref [] in
  let touch net =
    if not (Hashtbl.mem net_index net) then begin
      Hashtbl.add net_index net (Hashtbl.length net_index);
      nets := net :: !nets
    end
  in
  List.iter touch input_nets;
  Int_set.iter
    (fun inst_id ->
       List.iter (fun (_, net) -> touch net)
         (Design.instance design inst_id).Design.connections)
    member_set;
  let node_count = Hashtbl.length net_index in
  (* Edges: for each member instance, input net -> output net with delays. *)
  let successors = Array.make node_count [] in
  Int_set.iter
    (fun inst_id ->
       let inst = Design.instance design inst_id in
       let cell = inst.Design.cell in
       List.iter
         (fun out_pin ->
            List.iter
              (fun (arc : Hb_cell.Cell.timing_arc) ->
                 match
                   ( Design.net_of_pin design ~inst:inst_id
                       ~pin:arc.Hb_cell.Cell.from_pin,
                     Design.net_of_pin design ~inst:inst_id
                       ~pin:arc.Hb_cell.Cell.to_pin,
                     arc_delays design inst_id arc )
                 with
                 | Some from_net, Some to_net, Some (worst, best) ->
                   let from_ix = Hashtbl.find net_index from_net in
                   let to_ix = Hashtbl.find net_index to_net in
                   successors.(from_ix) <-
                     (to_ix, worst, best) :: successors.(from_ix)
                 | _, _, _ -> ())
              (Hb_cell.Cell.arcs_to cell
                 ~output:out_pin.Hb_cell.Cell.pin_name))
         (Hb_cell.Cell.output_pins cell))
    member_set;
  let order =
    match
      Hb_util.Topo.sort ~nodes:node_count
        ~successors:(fun i -> List.map (fun (s, _, _) -> s) successors.(i))
    with
    | Hb_util.Topo.Sorted order -> order
    | Hb_util.Topo.Cycle _ ->
      failwith "Hierarchy.collapse: module contains a combinational cycle"
  in
  (* One longest/shortest-path sweep per module input. *)
  List.map
    (fun input_net ->
       let worst = Array.make node_count Hb_util.Time.neg_infinity in
       let best = Array.make node_count Hb_util.Time.infinity in
       let source = Hashtbl.find net_index input_net in
       worst.(source) <- 0.0;
       best.(source) <- 0.0;
       Array.iter
         (fun node ->
            if Hb_util.Time.is_finite worst.(node) then
              List.iter
                (fun (succ, w, b) ->
                   if worst.(node) +. w > worst.(succ) then
                     worst.(succ) <- worst.(node) +. w;
                   if best.(node) +. b < best.(succ) then
                     best.(succ) <- best.(node) +. b)
                successors.(node))
         order;
       let reachable_outputs =
         List.filter_map
           (fun output_net ->
              let ix = Hashtbl.find net_index output_net in
              if Hb_util.Time.is_finite worst.(ix) then
                Some (output_net, worst.(ix), best.(ix))
              else None)
           output_nets
       in
       (input_net, reachable_outputs))
    input_nets

(* Boundary nets of a module: inputs are nets loaded inside but driven
   outside; outputs are nets driven inside and loaded outside (or by an
   output port). *)
let module_boundary design ~members =
  let member_set = Int_set.of_list members in
  let inside = function
    | Design.Pin { inst; pin = _ } -> Int_set.mem inst member_set
    | Design.Port _ -> false
  in
  let inputs = ref [] and outputs = ref [] in
  for net_id = 0 to Design.net_count design - 1 do
    let net = Design.net design net_id in
    let driven_inside = List.exists inside net.Design.drivers in
    let driven_outside = List.exists (fun e -> not (inside e)) net.Design.drivers in
    let loaded_inside = List.exists inside net.Design.loads in
    let loaded_outside = List.exists (fun e -> not (inside e)) net.Design.loads in
    if loaded_inside && (driven_outside || not driven_inside) then
      inputs := net_id :: !inputs;
    if driven_inside && loaded_outside then outputs := net_id :: !outputs
  done;
  (List.rev !inputs, List.rev !outputs)

let macro_cell design ~path ~members ~input_nets ~output_nets =
  let arc_table = module_arc_delays design ~members ~input_nets ~output_nets in
  let input_pin_name = Hashtbl.create 8 and output_pin_name = Hashtbl.create 8 in
  List.iteri
    (fun i net -> Hashtbl.add input_pin_name net (Printf.sprintf "i%d" i))
    input_nets;
  List.iteri
    (fun i net -> Hashtbl.add output_pin_name net (Printf.sprintf "o%d" i))
    output_nets;
  (* Input pin capacitance: sum of the member pins hanging on that net. *)
  let member_set = Int_set.of_list members in
  let input_cap net_id =
    let net = Design.net design net_id in
    List.fold_left
      (fun acc endpoint ->
         match endpoint with
         | Design.Pin { inst; pin } when Int_set.mem inst member_set ->
           (match Hb_cell.Cell.find_pin (Design.instance design inst).Design.cell pin with
            | Some p -> acc +. p.Hb_cell.Cell.capacitance
            | None -> acc)
         | Design.Pin _ | Design.Port _ -> acc)
      0.0 net.Design.loads
  in
  let pins =
    List.map
      (fun net ->
         { Hb_cell.Cell.pin_name = Hashtbl.find input_pin_name net;
           role = Hb_cell.Cell.Data_in;
           capacitance = input_cap net })
      input_nets
    @ List.map
        (fun net ->
           { Hb_cell.Cell.pin_name = Hashtbl.find output_pin_name net;
             role = Hb_cell.Cell.Data_out;
             capacitance = 0.0 })
        output_nets
  in
  let arcs =
    List.concat_map
      (fun (input_net, reachable) ->
         List.map
           (fun (output_net, worst, best) ->
              { Hb_cell.Cell.from_pin = Hashtbl.find input_pin_name input_net;
                to_pin = Hashtbl.find output_pin_name output_net;
                delay =
                  Hb_cell.Delay_model.make
                    ~rise:(Hb_cell.Delay_model.arc ~intrinsic:worst ~slope:0.0)
                    ~fall:(Hb_cell.Delay_model.arc ~intrinsic:best ~slope:0.0) })
           reachable)
      arc_table
  in
  let area =
    List.fold_left
      (fun acc inst_id ->
         acc +. (Design.instance design inst_id).Design.cell.Hb_cell.Cell.area)
      0.0 members
  in
  let cell =
    Hb_cell.Cell.make
      ~name:(Printf.sprintf "macro_%s" (String.map (function '/' -> '_' | c -> c) path))
      ~kind:(Hb_cell.Kind.Comb (Hb_cell.Kind.Macro (List.length input_nets)))
      ~pins ~timing:(Hb_cell.Cell.Comb_timing arcs) ~area ~drive:1
  in
  let connections =
    List.map
      (fun net ->
         (Hashtbl.find input_pin_name net, (Design.net design net).Design.net_name))
      input_nets
    @ List.map
        (fun net ->
           (Hashtbl.find output_pin_name net, (Design.net design net).Design.net_name))
        output_nets
  in
  (cell, connections)

let collapse design =
  let groups = ref String_map.empty in
  Array.iteri
    (fun i inst ->
       let path = inst.Design.module_path in
       if path <> "" then begin
         (match inst.Design.cell.Hb_cell.Cell.kind with
          | Hb_cell.Kind.Sync _ ->
            failwith
              (Printf.sprintf
                 "Hierarchy.collapse: module %s contains synchroniser %s"
                 path inst.Design.inst_name)
          | Hb_cell.Kind.Comb _ -> ());
         let existing = Option.value ~default:[] (String_map.find_opt path !groups) in
         groups := String_map.add path (i :: existing) !groups
       end)
    design.Design.instances;
  if String_map.is_empty !groups then design
  else begin
    (* Rebuild through a builder, reusing net names. *)
    let builder =
      Builder.create
        ~name:design.Design.design_name
        ~library:(Hb_cell.Library.create [])
    in
    Array.iter
      (fun p ->
         Builder.add_port builder ~name:p.Design.port_name
           ~direction:p.Design.direction ~is_clock:p.Design.is_clock)
      design.Design.ports;
    let collapsed = Hashtbl.create 64 in
    String_map.iter
      (fun _ members -> List.iter (fun i -> Hashtbl.replace collapsed i ()) members)
      !groups;
    Array.iteri
      (fun i inst ->
         if not (Hashtbl.mem collapsed i) then
           Builder.add_instance_of_cell builder
             ~module_path:inst.Design.module_path
             ~name:inst.Design.inst_name ~cell:inst.Design.cell
             ~connections:
               (List.map
                  (fun (pin, net) ->
                     (pin, (Design.net design net).Design.net_name))
                  inst.Design.connections)
             ())
      design.Design.instances;
    String_map.iter
      (fun path members ->
         let members = List.rev members in
         let input_nets, output_nets = module_boundary design ~members in
         let cell, connections =
           macro_cell design ~path ~members ~input_nets ~output_nets
         in
         Builder.add_instance_of_cell builder ~module_path:path
           ~name:(Printf.sprintf "macro_%s"
                    (String.map (function '/' -> '_' | c -> c) path))
           ~cell ~connections ())
      !groups;
    Builder.freeze builder
  end
