let rebuild design ~cell_of ~module_path_of =
  let builder =
    Builder.create ~name:design.Design.design_name
      ~library:(Hb_cell.Library.create [])
  in
  Array.iter
    (fun p ->
       Builder.add_port builder ~name:p.Design.port_name
         ~direction:p.Design.direction ~is_clock:p.Design.is_clock)
    design.Design.ports;
  Array.iteri
    (fun i inst ->
       Builder.add_instance_of_cell builder
         ~module_path:(module_path_of i inst)
         ~name:inst.Design.inst_name ~cell:(cell_of i inst)
         ~connections:
           (List.map
              (fun (pin, net) -> (pin, (Design.net design net).Design.net_name))
              inst.Design.connections)
         ())
    design.Design.instances;
  Builder.freeze builder

let map_cells design ~f =
  rebuild design ~cell_of:f
    ~module_path_of:(fun _ inst -> inst.Design.module_path)

let with_module_paths design ~f =
  rebuild design
    ~cell_of:(fun _ inst -> inst.Design.cell)
    ~module_path_of:f

