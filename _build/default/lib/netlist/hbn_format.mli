(** The [.hbn] textual netlist format.

    Hummingbird's substitute for the OCT database: a small, line-oriented
    description that round-trips through {!write} / {!parse}.

    {v
    # comment
    design counter
    port in clk clock
    port in reset
    port out done
    inst u1 dff d=n1 ck=clk q=n2
    inst u2 inv_x1 module=ctl a=n2 y=n1
    end
    v}

    Grammar, one directive per line:
    - [design <name>] — must come first;
    - [port in <name> [clock]] / [port out <name>];
    - [inst <instance> <cell> [module=<path>] <pin>=<net> ...];
    - [end] — must come last;
    - blank lines and lines starting with [#] are ignored. *)

exception Parse_error of { line : int; message : string }

(** [parse ~library text] builds the design described by [text].
    @raise Parse_error on malformed input.
    @raise Failure when the netlist fails {!Builder.freeze} validation. *)
val parse : library:Hb_cell.Library.t -> string -> Design.t

(** [parse_file ~library path] reads and parses [path]. *)
val parse_file : library:Hb_cell.Library.t -> string -> Design.t

(** [write design] renders the design in [.hbn] syntax.

    Collapsed-macro instances reference synthetic cell names that are not in
    the standard library, so designs containing them do not round-trip. *)
val write : Design.t -> string

(** [write_file design path] writes {!write}'s output to [path]. *)
val write_file : Design.t -> string -> unit
