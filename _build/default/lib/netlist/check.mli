(** Design-rule lint.

    Structural validity (single drivers, connected inputs) is enforced at
    {!Builder.freeze}; this pass reports the {e questionable} rest —
    things a synthesis flow wants surfaced before timing is trusted. *)

type severity = Warning | Error

type finding = {
  severity : severity;
  rule : string;      (** stable rule id, e.g. ["dangling-output"] *)
  subject : string;   (** net/instance/port name *)
  message : string;
}

(** The individual rules, exposed for selective use. Each returns its
    findings on the design. *)

(** [dangling_outputs design] — cell output pins driving nets with no
    loads (dead logic, or a missing connection). *)
val dangling_outputs : Design.t -> finding list

(** [unused_inputs design] — non-clock input ports whose net has no
    loads. *)
val unused_inputs : Design.t -> finding list

(** [high_fanout design ~limit] — nets with more than [limit] loads
    (default 16): suspicious without buffering, and electrically dubious
    under the linear delay model. *)
val high_fanout : ?limit:int -> Design.t -> finding list

(** [clock_as_data design] — nets driven by clock ports that reach data
    input pins of combinational or synchronising cells other than through
    control pins. Legal (enable gating mixes clock and data) but worth
    flagging: the analyser assigns no arrival to clock-driven nets, so a
    clock used as data contributes no path constraint. *)
val clock_as_data : Design.t -> finding list

(** [data_as_control design] — synchroniser control pins whose cone
    contains no clock port: an error the analyser would also raise, but
    reported here with a rule id instead of an exception. *)
val data_as_control : Design.t -> finding list

(** [self_loop design] — combinational instances feeding themselves
    directly (the tightest combinational cycle; larger cycles surface
    during cluster extraction). *)
val self_loop : Design.t -> finding list

(** [run design] — every rule with default parameters, errors first. *)
val run : Design.t -> finding list

val pp_finding : Format.formatter -> finding -> unit
