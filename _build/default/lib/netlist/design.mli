(** Frozen gate-level designs.

    A design is a bipartite graph of cell instances and nets, with primary
    input/output ports at the boundary. Build one with {!Builder}, read one
    with {!Parser}. All structures here are immutable and indexed by dense
    integer ids, which is what the analyser iterates over.

    This in-memory form (plus the [.hbn] text format) substitutes for the
    OCT database the paper's implementation used. *)

type port_direction = Port_in | Port_out

type port = {
  port_name : string;
  direction : port_direction;
  is_clock : bool;  (** input ports that are clock generator outputs *)
}

(** Either side of a net connection. *)
type endpoint =
  | Pin of { inst : int; pin : string }  (** instance pin *)
  | Port of int                          (** primary port *)

type instance = {
  inst_name : string;
  cell : Hb_cell.Cell.t;
  (** [connections] maps every connected pin name to a net id. *)
  connections : (string * int) list;
  (** Hierarchical module path, e.g. ["alu/adder"]; [""] at top level. *)
  module_path : string;
}

type net = {
  net_name : string;
  (** Driving endpoints. A net normally has exactly one driver; a bus net
      may have several, but then all of them must be clocked tristate
      driver outputs. *)
  drivers : endpoint list;
  loads : endpoint list;
  (** Total capacitive load on the net in pF (pin caps + wire estimate). *)
  load_capacitance : float;
}

type t = private {
  design_name : string;
  instances : instance array;
  nets : net array;
  ports : port array;
}

(** [instance_count t], [net_count t], [port_count t]. *)
val instance_count : t -> int
val net_count : t -> int
val port_count : t -> int

val instance : t -> int -> instance
val net : t -> int -> net
val port : t -> int -> port

(** [net_of_pin t ~inst ~pin] is the net connected to the pin, if any. *)
val net_of_pin : t -> inst:int -> pin:string -> int option

(** [net_of_port t port_id] is the net attached to the port, if any. *)
val net_of_port : t -> int -> int option

(** [find_instance t name] / [find_port t name] look up by name. *)
val find_instance : t -> string -> int option
val find_port : t -> string -> int option
val find_net : t -> string -> int option

(** [sync_instances t] lists ids of synchronising-element instances. *)
val sync_instances : t -> int list

(** [comb_instances t] lists ids of combinational instances. *)
val comb_instances : t -> int list

(** [clock_ports t] lists ids of ports flagged as clock sources. *)
val clock_ports : t -> int list

(** [pp_endpoint t ppf e] renders e.g. ["u42.a"] or ["port phi1"]. *)
val pp_endpoint : t -> Format.formatter -> endpoint -> unit

val endpoint_to_string : t -> endpoint -> string

(** Used by {!Builder} only. *)
val unsafe_make :
  design_name:string ->
  instances:instance array ->
  nets:net array ->
  ports:port array ->
  t
