(** Design statistics — the "cells" and "nets" columns of the paper's
    Table 1, plus area and composition breakdowns for reports. *)

type t = {
  cells : int;            (** total instances *)
  combinational : int;
  synchronisers : int;
  nets : int;
  ports : int;
  area : float;           (** sum of instance areas *)
  by_kind : (string * int) list;  (** kind name → count, sorted by name *)
}

val compute : Design.t -> t

val pp : Format.formatter -> t -> unit
