(** Incremental construction of designs.

    A builder accumulates ports, instances and net connections by name and
    {!freeze}s into a validated {!Design.t}. Nets spring into existence the
    first time they are named. *)

type t

(** [create ~name ~library] starts an empty design. Instances added later
    name cells from [library]. *)
val create : name:string -> library:Hb_cell.Library.t -> t

val library : t -> Hb_cell.Library.t

(** [add_port t ~name ~direction ~is_clock] declares a primary port and
    implicitly attaches it to the net of the same name.
    @raise Invalid_argument on duplicate port names. *)
val add_port :
  t -> name:string -> direction:Design.port_direction -> is_clock:bool -> unit

(** [add_instance t ~name ~cell ~connections] instantiates library cell
    [cell]; [connections] maps pin names to net names. Unknown cells,
    duplicate instance names and unknown pins are rejected.
    [module_path] defaults to [""] (top level). *)
val add_instance :
  t ->
  ?module_path:string ->
  name:string ->
  cell:string ->
  connections:(string * string) list ->
  unit ->
  unit

(** [add_instance_of_cell t ~name ~cell ~connections] is {!add_instance}
    for a cell value not present in the library (e.g. a collapsed macro). *)
val add_instance_of_cell :
  t ->
  ?module_path:string ->
  name:string ->
  cell:Hb_cell.Cell.t ->
  connections:(string * string) list ->
  unit ->
  unit

(** Wire capacitance added per load on a net, pF; default 0.015. *)
val set_wire_capacitance_per_load : t -> float -> unit

(** [freeze t] validates and produces the immutable design:
    - every net has exactly one driver (an input port or an output pin);
    - every data/control input pin of every instance is connected;
    - output ports are driven.
    @raise Failure with a readable message when validation fails. *)
val freeze : t -> Design.t
