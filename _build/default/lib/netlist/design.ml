type port_direction = Port_in | Port_out

type port = {
  port_name : string;
  direction : port_direction;
  is_clock : bool;
}

type endpoint =
  | Pin of { inst : int; pin : string }
  | Port of int

type instance = {
  inst_name : string;
  cell : Hb_cell.Cell.t;
  connections : (string * int) list;
  module_path : string;
}

type net = {
  net_name : string;
  drivers : endpoint list;
  loads : endpoint list;
  load_capacitance : float;
}

type t = {
  design_name : string;
  instances : instance array;
  nets : net array;
  ports : port array;
}

let instance_count t = Array.length t.instances
let net_count t = Array.length t.nets
let port_count t = Array.length t.ports
let instance t i = t.instances.(i)
let net t i = t.nets.(i)
let port t i = t.ports.(i)

let net_of_pin t ~inst ~pin =
  List.assoc_opt pin t.instances.(inst).connections

let net_of_port t port_id =
  let matches = function
    | Port p -> p = port_id
    | Pin _ -> false
  in
  let found = ref None in
  Array.iteri
    (fun i n ->
       if !found = None
       && (List.exists matches n.drivers || List.exists matches n.loads)
       then found := Some i)
    t.nets;
  !found

let find_by_name get count t name =
  let rec loop i =
    if i >= count t then None
    else if String.equal (get t i) name then Some i
    else loop (i + 1)
  in
  loop 0

let find_instance =
  find_by_name (fun t i -> t.instances.(i).inst_name) instance_count

let find_port = find_by_name (fun t i -> t.ports.(i).port_name) port_count
let find_net = find_by_name (fun t i -> t.nets.(i).net_name) net_count

let filter_instances predicate t =
  let acc = ref [] in
  for i = Array.length t.instances - 1 downto 0 do
    if predicate t.instances.(i) then acc := i :: !acc
  done;
  !acc

let sync_instances t =
  filter_instances (fun inst -> Hb_cell.Kind.is_sync inst.cell.Hb_cell.Cell.kind) t

let comb_instances t =
  filter_instances (fun inst -> Hb_cell.Kind.is_comb inst.cell.Hb_cell.Cell.kind) t

let clock_ports t =
  let acc = ref [] in
  for i = Array.length t.ports - 1 downto 0 do
    if t.ports.(i).is_clock then acc := i :: !acc
  done;
  !acc

let pp_endpoint t ppf = function
  | Pin { inst; pin } ->
    Format.fprintf ppf "%s.%s" t.instances.(inst).inst_name pin
  | Port p -> Format.fprintf ppf "port %s" t.ports.(p).port_name

let endpoint_to_string t e = Format.asprintf "%a" (pp_endpoint t) e

let unsafe_make ~design_name ~instances ~nets ~ports =
  { design_name; instances; nets; ports }
