(** Hierarchical abstraction of combinational modules.

    The paper analyses "systems at arbitrary levels of abstraction (not just
    at the level of the most primitive logic gates)" — Table 1 contrasts
    SM1F, a flattened FSM, against SM1H where "the combinational logic is
    contained in a single module". This module implements that abstraction:
    every named module of combinational instances is collapsed into one
    macro instance whose input→output arcs carry the module's worst (and
    best) internal path delays, evaluated at the nets' current loads. *)

(** [collapse design] replaces each group of combinational instances that
    share a non-empty [module_path] with a single macro instance. Sync
    elements and top-level combinational cells are kept as-is.

    The macro's timing arcs encode the module's worst internal path delay in
    the rise direction and the best (shortest) in the fall direction, so
    [Delay_model.worst]/[best] recover max/min path delays. Arcs have zero
    load slope because net loads are already baked in.

    @raise Failure when a module contains a synchronising element or its
    internal logic is cyclic. *)
val collapse : Design.t -> Design.t

(** [module_paths design] lists the distinct non-empty module paths, sorted. *)
val module_paths : Design.t -> string list
