exception Parse_error of { line : int; message : string }

let error line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let tokens_of_line line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

type state = {
  mutable builder : Builder.t option;
  mutable finished : bool;
  library : Hb_cell.Library.t;
}

let split_binding lineno token =
  match String.index_opt token '=' with
  | None -> error lineno "expected <pin>=<net>, got %S" token
  | Some i ->
    let key = String.sub token 0 i in
    let value = String.sub token (i + 1) (String.length token - i - 1) in
    if key = "" || value = "" then error lineno "empty pin or net in %S" token;
    (key, value)

let builder_exn state lineno =
  match state.builder with
  | Some b when not state.finished -> b
  | Some _ -> error lineno "directive after 'end'"
  | None -> error lineno "expected 'design <name>' first"

let parse_line state lineno line =
  match tokens_of_line line with
  | [] -> ()
  | comment :: _ when String.length comment > 0 && comment.[0] = '#' -> ()
  | [ "design"; name ] ->
    (match state.builder with
     | Some _ -> error lineno "duplicate 'design' directive"
     | None -> state.builder <- Some (Builder.create ~name ~library:state.library))
  | "design" :: _ -> error lineno "usage: design <name>"
  | "port" :: rest ->
    let b = builder_exn state lineno in
    (match rest with
     | [ "in"; name ] ->
       Builder.add_port b ~name ~direction:Design.Port_in ~is_clock:false
     | [ "in"; name; "clock" ] ->
       Builder.add_port b ~name ~direction:Design.Port_in ~is_clock:true
     | [ "out"; name ] ->
       Builder.add_port b ~name ~direction:Design.Port_out ~is_clock:false
     | _ -> error lineno "usage: port in|out <name> [clock]")
  | "inst" :: name :: cell :: bindings ->
    let b = builder_exn state lineno in
    let module_path, bindings =
      match bindings with
      | first :: rest when String.length first > 7
                        && String.sub first 0 7 = "module=" ->
        (String.sub first 7 (String.length first - 7), rest)
      | _ -> ("", bindings)
    in
    let connections = List.map (split_binding lineno) bindings in
    (try Builder.add_instance b ~module_path ~name ~cell ~connections ()
     with Invalid_argument msg -> error lineno "%s" msg)
  | [ "end" ] ->
    ignore (builder_exn state lineno);
    state.finished <- true
  | directive :: _ -> error lineno "unknown directive %S" directive

let parse ~library text =
  let state = { builder = None; finished = false; library } in
  let lines = String.split_on_char '\n' text in
  List.iteri (fun i line -> parse_line state (i + 1) line) lines;
  match state.builder with
  | None -> error 1 "empty input: no 'design' directive"
  | Some b ->
    if not state.finished then
      error (List.length lines) "missing 'end' directive";
    Builder.freeze b

let parse_file ~library path =
  let ic = open_in path in
  let length = in_channel_length ic in
  let text =
    try really_input_string ic length
    with e -> close_in ic; raise e
  in
  close_in ic;
  parse ~library text

let write design =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer
    (Printf.sprintf "design %s\n" design.Design.design_name);
  Array.iter
    (fun p ->
       match p.Design.direction, p.Design.is_clock with
       | Design.Port_in, true ->
         Buffer.add_string buffer (Printf.sprintf "port in %s clock\n" p.Design.port_name)
       | Design.Port_in, false ->
         Buffer.add_string buffer (Printf.sprintf "port in %s\n" p.Design.port_name)
       | Design.Port_out, _ ->
         Buffer.add_string buffer (Printf.sprintf "port out %s\n" p.Design.port_name))
    design.Design.ports;
  Array.iter
    (fun inst ->
       Buffer.add_string buffer
         (Printf.sprintf "inst %s %s" inst.Design.inst_name
            inst.Design.cell.Hb_cell.Cell.name);
       if inst.Design.module_path <> "" then
         Buffer.add_string buffer (Printf.sprintf " module=%s" inst.Design.module_path);
       List.iter
         (fun (pin, net) ->
            Buffer.add_string buffer
              (Printf.sprintf " %s=%s" pin (Design.net design net).Design.net_name))
         inst.Design.connections;
       Buffer.add_char buffer '\n')
    design.Design.instances;
  Buffer.add_string buffer "end\n";
  Buffer.contents buffer

let write_file design path =
  let oc = open_out path in
  (try output_string oc (write design)
   with e -> close_out oc; raise e);
  close_out oc
