(** Rebuilding a design with substituted cells.

    The re-synthesis loop swaps cells for faster drive variants; this
    helper re-threads an existing design through a fresh builder with a
    per-instance cell mapping, preserving ports, net names, connections
    and module paths. *)

(** [map_cells design ~f] rebuilds [design] with [f inst_id instance]
    choosing each instance's cell. The new cell must have the same pin
    names as the old one for the connections to re-attach.
    @raise Failure when the rebuilt design fails validation. *)
val map_cells :
  Design.t -> f:(int -> Design.instance -> Hb_cell.Cell.t) -> Design.t

(** [with_module_paths design ~f] rebuilds [design] with [f inst_id
    instance] choosing each instance's module path (return [""] for top
    level) — used to impose a hierarchy before {!Hierarchy.collapse}. *)
val with_module_paths :
  Design.t -> f:(int -> Design.instance -> string) -> Design.t
