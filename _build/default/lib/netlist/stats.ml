module String_map = Map.Make (String)

type t = {
  cells : int;
  combinational : int;
  synchronisers : int;
  nets : int;
  ports : int;
  area : float;
  by_kind : (string * int) list;
}

let compute design =
  let combinational = ref 0 and synchronisers = ref 0 and area = ref 0.0 in
  let by_kind = ref String_map.empty in
  for i = 0 to Design.instance_count design - 1 do
    let inst = Design.instance design i in
    let cell = inst.Design.cell in
    area := !area +. cell.Hb_cell.Cell.area;
    if Hb_cell.Kind.is_sync cell.Hb_cell.Cell.kind then incr synchronisers
    else incr combinational;
    let key = Hb_cell.Kind.to_string cell.Hb_cell.Cell.kind in
    let count = Option.value ~default:0 (String_map.find_opt key !by_kind) in
    by_kind := String_map.add key (count + 1) !by_kind
  done;
  { cells = Design.instance_count design;
    combinational = !combinational;
    synchronisers = !synchronisers;
    nets = Design.net_count design;
    ports = Design.port_count design;
    area = !area;
    by_kind = String_map.bindings !by_kind;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cells: %d (%d combinational, %d synchronising)@,nets: %d@,ports: %d@,area: %.1f@,"
    t.cells t.combinational t.synchronisers t.nets t.ports t.area;
  List.iter (fun (kind, n) -> Format.fprintf ppf "  %-8s %d@," kind n) t.by_kind;
  Format.fprintf ppf "@]"
