lib/netlist/hierarchy.ml: Array Builder Design Hashtbl Hb_cell Hb_util Int List Map Option Printf Set String
