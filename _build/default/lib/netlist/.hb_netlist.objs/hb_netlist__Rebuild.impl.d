lib/netlist/rebuild.ml: Array Builder Design Hb_cell List
