lib/netlist/blif.mli: Design Hb_cell
