lib/netlist/design.mli: Format Hb_cell
