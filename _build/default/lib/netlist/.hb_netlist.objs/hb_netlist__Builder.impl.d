lib/netlist/builder.ml: Array Design Format Hb_cell List Map Printf String
