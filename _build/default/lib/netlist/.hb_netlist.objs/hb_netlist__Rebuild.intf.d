lib/netlist/rebuild.mli: Design Hb_cell
