lib/netlist/builder.mli: Design Hb_cell
