lib/netlist/design.ml: Array Format Hb_cell List String
