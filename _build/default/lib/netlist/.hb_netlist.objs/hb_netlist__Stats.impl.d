lib/netlist/stats.ml: Design Format Hb_cell List Map Option String
