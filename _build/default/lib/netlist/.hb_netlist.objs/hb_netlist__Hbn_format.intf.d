lib/netlist/hbn_format.mli: Design Hb_cell
