lib/netlist/hbn_format.ml: Array Buffer Builder Design Format Hb_cell List Printf String
