lib/netlist/hierarchy.mli: Design
