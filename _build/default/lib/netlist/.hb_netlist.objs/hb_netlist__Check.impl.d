lib/netlist/check.ml: Design Format Hashtbl Hb_cell List
