lib/netlist/check.mli: Design Format
