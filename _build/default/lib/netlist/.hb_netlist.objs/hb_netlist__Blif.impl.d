lib/netlist/blif.ml: Builder Design Format Hb_cell List Printf Stdlib String
