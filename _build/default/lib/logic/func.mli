(** Boolean semantics of the combinational cell kinds.

    Used by the functional simulator and by static false-path analysis.
    Input ordering follows the library's pin order (a, b, c, d); for the
    mux, [a]/[b] are the data inputs and [c] the select ([c = false]
    selects [a]). *)

(** [evaluate kind inputs] computes the cell output; [None] for macros
    (whose function was erased by collapsing) when the input count
    mismatches the kind's fan-in, evaluation also returns [None]. *)
val evaluate : Hb_cell.Kind.combinational -> bool list -> bool option

(** [side_requirement kind ~on_path ~side] is the static value the side
    input at index [side] must hold for a transition at input index
    [on_path] to propagate to the output — [None] when no single value is
    required (xor-like and disjunctive gates, or the gate's function is
    unknown). Only gates whose side requirements are purely conjunctive
    report values, so a conflict among reported requirements proves a path
    false while absence of requirements never wrongly kills one. *)
val side_requirement :
  Hb_cell.Kind.combinational -> on_path:int -> side:int -> bool option
