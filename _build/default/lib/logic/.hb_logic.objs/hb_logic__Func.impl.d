lib/logic/func.ml: Fun Hb_cell List
