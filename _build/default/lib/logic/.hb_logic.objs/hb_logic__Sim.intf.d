lib/logic/sim.mli: Hb_netlist
