lib/logic/sim.ml: Array Func Hashtbl Hb_cell Hb_netlist Hb_util List Option
