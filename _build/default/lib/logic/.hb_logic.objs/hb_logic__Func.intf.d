lib/logic/func.mli: Hb_cell
