(** Cycle-based functional simulation.

    A deliberately simple two-valued simulator used to validate that
    generated designs are live logic (outputs toggle, state evolves) and
    to sanity-check netlist semantics in tests. Timing is ignored —
    exactly the complement of the analyser.

    Approximations, documented and acceptable for its validation role:
    - transparent latches behave as edge-triggered registers (one sample
      per {!step});
    - a tristate driver drives its bus when its control net evaluates
      true; with several enabled drivers the last instance wins; with
      none, the bus keeps its previous value;
    - collapsed macros (whose logic function was erased) evaluate as the
      parity of their inputs. *)

type t

(** [create design] orders the combinational logic and initialises every
    net to false.
    @raise Failure when the combinational logic is cyclic. *)
val create : Hb_netlist.Design.t -> t

(** [set_input t ~port value] drives a primary input (clock ports
    included, though {!step} ignores their waveform semantics).
    @raise Not_found for unknown ports. *)
val set_input : t -> port:string -> bool -> unit

(** [step t] settles the combinational logic, samples every synchroniser,
    and settles again — one clock cycle. *)
val step : t -> unit

(** [net_value t name] reads a net.
    @raise Not_found for unknown nets. *)
val net_value : t -> string -> bool

(** [output_value t ~port] reads a primary output. *)
val output_value : t -> port:string -> bool

(** [toggle_count t name] is how many times the net changed value across
    all {!step}s so far. *)
val toggle_count : t -> string -> int

(** [total_toggles t] sums toggle counts over all nets. *)
val total_toggles : t -> int
