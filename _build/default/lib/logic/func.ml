let evaluate (kind : Hb_cell.Kind.combinational) inputs =
  match kind, inputs with
  | Hb_cell.Kind.Inv, [ a ] -> Some (not a)
  | Hb_cell.Kind.Buf, [ a ] -> Some a
  | Hb_cell.Kind.Nand _, inputs when inputs <> [] ->
    Some (not (List.for_all Fun.id inputs))
  | Hb_cell.Kind.Nor _, inputs when inputs <> [] ->
    Some (not (List.exists Fun.id inputs))
  | Hb_cell.Kind.And2, [ a; b ] -> Some (a && b)
  | Hb_cell.Kind.Or2, [ a; b ] -> Some (a || b)
  | Hb_cell.Kind.Xor2, [ a; b ] -> Some (a <> b)
  | Hb_cell.Kind.Xnor2, [ a; b ] -> Some (a = b)
  | Hb_cell.Kind.Aoi22, [ a; b; c; d ] -> Some (not ((a && b) || (c && d)))
  | Hb_cell.Kind.Oai22, [ a; b; c; d ] -> Some (not ((a || b) && (c || d)))
  | Hb_cell.Kind.Mux2, [ a; b; c ] -> Some (if c then b else a)
  | Hb_cell.Kind.Majority3, [ a; b; c ] ->
    Some ((a && b) || (a && c) || (b && c))
  | Hb_cell.Kind.Macro _, _ -> None
  | ( Hb_cell.Kind.Inv | Hb_cell.Kind.Buf | Hb_cell.Kind.Nand _
    | Hb_cell.Kind.Nor _ | Hb_cell.Kind.And2 | Hb_cell.Kind.Or2
    | Hb_cell.Kind.Xor2 | Hb_cell.Kind.Xnor2 | Hb_cell.Kind.Aoi22
    | Hb_cell.Kind.Oai22 | Hb_cell.Kind.Mux2 | Hb_cell.Kind.Majority3 ), _ ->
    None

(* Only gates whose propagation condition is a conjunction of fixed side
   values participate; everything else reports no requirement, which can
   only keep (never wrongly kill) a path. *)
let side_requirement (kind : Hb_cell.Kind.combinational) ~on_path ~side =
  if on_path = side then None
  else
    match kind with
    | Hb_cell.Kind.Nand _ | Hb_cell.Kind.And2 -> Some true
    | Hb_cell.Kind.Nor _ | Hb_cell.Kind.Or2 -> Some false
    | Hb_cell.Kind.Inv | Hb_cell.Kind.Buf -> None
    | Hb_cell.Kind.Xor2 | Hb_cell.Kind.Xnor2 -> None
    | Hb_cell.Kind.Aoi22 | Hb_cell.Kind.Oai22 -> None
    | Hb_cell.Kind.Mux2 ->
      (* A transition on a data input propagates only when the select
         points at it: data input 0 needs select = false, data input 1
         needs select = true. Transitions on the select itself have no
         single-value side requirement. *)
      (match on_path, side with
       | 0, 2 -> Some false
       | 1, 2 -> Some true
       | _, _ -> None)
    | Hb_cell.Kind.Majority3 -> None
    | Hb_cell.Kind.Macro _ -> None
