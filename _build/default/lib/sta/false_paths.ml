(* Index of a pin name within the cell's data-input pin order. *)
let input_index cell pin_name =
  let rec find i = function
    | [] -> None
    | pin :: rest ->
      if String.equal pin.Hb_cell.Cell.pin_name pin_name then Some i
      else find (i + 1) rest
  in
  find 0 (Hb_cell.Cell.input_pins cell)

let statically_false (ctx : Context.t) (path : Paths.path) =
  let design = ctx.Context.design in
  (* Nets the transition travels through: requirements on them are not
     static side values and are ignored. *)
  let on_path_nets = Hashtbl.create 16 in
  List.iter
    (fun (hop : Paths.hop) -> Hashtbl.replace on_path_nets hop.Paths.net ())
    path.Paths.hops;
  (* Required static values per net. *)
  let required : (int, bool) Hashtbl.t = Hashtbl.create 16 in
  let conflict = ref false in
  let require net value =
    if not (Hashtbl.mem on_path_nets net) then
      match Hashtbl.find_opt required net with
      | Some existing when existing <> value -> conflict := true
      | Some _ -> ()
      | None -> Hashtbl.replace required net value
  in
  let rec walk = function
    | (previous : Paths.hop) :: (current : Paths.hop) :: rest ->
      (match current.Paths.via with
       | Some inst when not !conflict ->
         let record = Hb_netlist.Design.instance design inst in
         let cell = record.Hb_netlist.Design.cell in
         (match cell.Hb_cell.Cell.kind with
          | Hb_cell.Kind.Comb kind ->
            let input_pins = Hb_cell.Cell.input_pins cell in
            (* Pins of this instance fed by the previous hop's net. *)
            let on_path_pins =
              List.filter
                (fun pin ->
                   Hb_netlist.Design.net_of_pin design ~inst
                     ~pin:pin.Hb_cell.Cell.pin_name
                   = Some previous.Paths.net)
                input_pins
            in
            (match on_path_pins with
             | [ pin ] ->
               (match input_index cell pin.Hb_cell.Cell.pin_name with
                | None -> ()
                | Some on_path ->
                  List.iteri
                    (fun side side_pin ->
                       match
                         Hb_logic.Func.side_requirement kind ~on_path ~side
                       with
                       | None -> ()
                       | Some value ->
                         (match
                            Hb_netlist.Design.net_of_pin design ~inst
                              ~pin:side_pin.Hb_cell.Cell.pin_name
                          with
                          | Some net -> require net value
                          | None -> ()))
                    input_pins)
             | [] | _ :: _ :: _ ->
               (* Ambiguous (same net on several pins) or untraceable:
                  impose nothing — safe. *)
               ())
          | Hb_cell.Kind.Sync _ -> ())
       | Some _ | None -> ());
      walk (current :: rest)
    | [ _ ] | [] -> ()
  in
  walk path.Paths.hops;
  !conflict

type refined = {
  endpoint : int;
  block_slack : Hb_util.Time.t;
  true_slack : Hb_util.Time.t option;
  examined : int;
  false_skipped : int;
}

let refine_endpoint (ctx : Context.t) ~endpoint ?(limit = 64) () =
  match Paths.enumerate ctx ~endpoint ~limit with
  | [] -> None
  | (first :: _) as paths ->
    let rec find_true skipped = function
      | [] -> (None, skipped)
      | path :: rest ->
        if statically_false ctx path then find_true (skipped + 1) rest
        else (Some path.Paths.slack, skipped)
    in
    let true_slack, false_skipped = find_true 0 paths in
    Some
      { endpoint;
        block_slack = first.Paths.slack;
        true_slack;
        examined = List.length paths;
        false_skipped;
      }
