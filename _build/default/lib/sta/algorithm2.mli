(** Algorithm 2 — timing-constraint generation (paper, Section 6).

    Starting from the offsets Algorithm 1 leaves behind:

    - iteration 1 snatches time {e backward} across every synchronising
      element whose data-input slack is negative until nothing moves, at
      which point the signal ready times recorded at cell inputs are the
      {e actual} times for nodes in slow paths;
    - iteration 2 snatches time {e forward} where output slacks are
      negative and records required times at cell outputs.

    For nodes outside slow paths the recorded times are an upper bound on
    the ready time and a lower bound on the required time with the former
    below the latter, so the pair always brackets a legal target for
    re-synthesis. *)

type constraint_times = {
  ready : Hb_util.Time.t array;
      (** per global net: ready time (absolute offset in the clock period)
          recorded after backward snatching; [nan] where no signal
          arrives *)
  required : Hb_util.Time.t array;
      (** per global net: required time recorded after forward snatching *)
  net_slack : Hb_util.Time.t array;
      (** per global net: final slack (from the forward-snatched state) *)
  snatch_backward_cycles : int;
  snatch_forward_cycles : int;
  capped : bool;
}

(** [run ctx] mutates element offsets (snapshot and restore around it if
    the Algorithm 1 state must be preserved). *)
val run : Context.t -> constraint_times

(** [module_constraints ctx times] groups the generated times by
    combinational instance: for every instance traversed by a slow path
    (minimum net slack ≤ 0 on its pins), reports input-ready and
    output-required times — the interface handed to the re-synthesis
    program ("Provide input data ready times and output required times for
    all combinational logic modules traversed by paths that are too slow",
    Algorithm 3). Results are sorted by ascending slack. *)
type module_constraint = {
  inst : int;
  inst_name : string;
  slack : Hb_util.Time.t;  (** worst pin slack *)
  input_ready : (string * Hb_util.Time.t) list;     (** pin → ready *)
  output_required : (string * Hb_util.Time.t) list; (** pin → required *)
}

val module_constraints : Context.t -> constraint_times -> module_constraint list
