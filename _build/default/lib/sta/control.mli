(** Control-cone tracing.

    The paper assumes "the signal connected to the control input of every
    synchronising element is a monotonic combinational logic function of
    exactly one clock signal" (Section 3). This module verifies the
    assumption and extracts, for every synchronising instance:

    - the unique clock generator port in its control cone (by convention a
      clock port's name names the waveform);
    - the control sense: whether the control signal switches with or
      against the clock (an inverted control swaps the roles of leading and
      trailing edges);
    - the worst clock-to-control propagation delay [O_at];
    - whether any non-clock source (a synchronising-element output or a
      non-clock primary input) feeds the cone — an {e enable}; such control
      pins become enable-path endpoints in the cluster analysis. *)

exception Control_error of string

type info = {
  sync_inst : int;         (** netlist instance id *)
  clock_port : int;        (** netlist port id of the clock generator *)
  clock : string;          (** waveform name (= the port's name) *)
  inverted : bool;         (** control switches opposite to the clock *)
  control_delay : Hb_util.Time.t;  (** worst clock→control-pin delay *)
  has_enables : bool;      (** non-clock sources present in the cone *)
}

(** [trace design ~inst] analyses the control cone of the synchronising
    instance [inst].
    @raise Control_error when the cone violates the Section 3 assumptions:
    no clock, more than one clock, inconsistent control sense, a
    non-monotonic gate (xor/mux/majority/macro) in the cone, or a directed
    cycle. *)
val trace : Hb_netlist.Design.t -> inst:int -> info

(** [trace_all design] runs {!trace} on every synchronising instance and
    returns the results keyed by instance id. *)
val trace_all : Hb_netlist.Design.t -> (int * info) list
