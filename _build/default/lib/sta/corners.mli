(** Multi-corner analysis — an extension.

    Runs the full Algorithm 1 analysis at several process/voltage/
    temperature corners, each modelled as a global scaling of every
    component delay over a base estimator (slow corners scale up, fast
    corners down). The max-delay verdict must hold at the slowest corner;
    the supplementary (minimum-delay) checks are most stressed at the
    fastest, so hold violations are collected per corner too. *)

type corner = {
  corner_name : string;
  delay_scale : float;  (** > 0; 1.0 is the nominal corner *)
}

(** Classic three-corner set: fast 0.8×, nominal 1.0×, slow 1.25×. *)
val typical : corner list

type result = {
  corner : corner;
  status : Algorithm1.status;
  worst_slack : Hb_util.Time.t;
  hold_violations : int;
}

type report = {
  results : result list;          (** in the order given *)
  all_corners_met : bool;         (** max-delay timing met at every corner *)
  any_hold_violation : bool;
}

(** [scaled_delays ~base ~scale] wraps a provider with a global delay
    multiplier. *)
val scaled_delays : base:Delays.t -> scale:float -> Delays.t

(** [analyse ~design ~system ?config ?base ?corners ()] runs one analysis
    per corner ([corners] defaults to {!typical}, [base] to
    {!Delays.lumped}). *)
val analyse :
  design:Hb_netlist.Design.t ->
  system:Hb_clock.System.t ->
  ?config:Config.t ->
  ?base:Delays.t ->
  ?corners:corner list ->
  unit ->
  report

(** [to_table report] renders the per-corner results. *)
val to_table : report -> string
