(** Algorithm 1 — identification of slow paths (paper, Section 6).

    Iterations 1 and 2 perform complete forward then backward slack
    transfer until a fixed point, removing surplus time from paths with
    positive slack. Iterations 3 and 4 run partial transfers (dividing the
    moved slack by the configured [n > 1]) as many times as the complete
    iterations cycled, returning some time to every path that is fast
    enough so it ends with strictly positive slack. Nodes left with
    non-positive slack lie on paths that are too slow.

    Because of the simplified synchronising-element model, "nodes in paths
    that are marginally fast enough may be identified as too slow" — the
    verdict is safe, not exact. *)

type status =
  | Meets_timing
      (** every node slack strictly positive: the system behaves as
          intended *)
  | Slow_paths
      (** at least one node slack is non-positive; the final slacks
          identify the slow paths *)

type outcome = {
  status : status;
  final : Slacks.t;          (** slacks at the final offsets *)
  forward_cycles : int;      (** complete forward transfer cycles run *)
  backward_cycles : int;     (** complete backward transfer cycles run *)
  capped : bool;
      (** true when the iteration cap was hit — indicates a modelling
          problem and pessimistic results *)
}

(** [run ctx] executes Algorithm 1 from the elements' current offsets,
    mutating them; the final offsets witness the verdict. *)
val run : Context.t -> outcome

(** [transfer_step ctx direction] performs one complete slack-transfer
    sweep across every synchronising element from a fresh slack snapshot
    (steps 1a+1c / 2a+2c of the paper's Algorithm 1) and reports whether
    any offset moved. Exposed so the monotonicity property behind the
    algorithm — a transfer never shrinks the set of satisfied path
    constraints — can be tested and demonstrated directly. *)
val transfer_step : Context.t -> [ `Forward | `Backward ] -> bool
