type timings = {
  preprocess_seconds : float;
  analysis_seconds : float;
  constraints_seconds : float;
}

type report = {
  context : Context.t;
  outcome : Algorithm1.outcome;
  constraints : Algorithm2.constraint_times option;
  hold_violations : Holdcheck.violation list;
  timings : timings;
}

let timed f =
  let start = Sys.time () in
  let result = f () in
  (result, Sys.time () -. start)

let preprocess ~design ~system ?config ?delays () =
  timed (fun () -> Context.make ~design ~system ?config ?delays ())

let analyse ~design ~system ?config ?delays ?(generate_constraints = true)
    ?(check_hold = true) () =
  let context, preprocess_seconds =
    preprocess ~design ~system ?config ?delays ()
  in
  let outcome, analysis_seconds = timed (fun () -> Algorithm1.run context) in
  let constraints, constraints_seconds =
    if generate_constraints then begin
      let snapshot = Elements.save_offsets context.Context.elements in
      let times, seconds = timed (fun () -> Algorithm2.run context) in
      Elements.restore_offsets context.Context.elements snapshot;
      (Some times, seconds)
    end
    else (None, 0.0)
  in
  let hold_violations = if check_hold then Holdcheck.check context else [] in
  { context;
    outcome;
    constraints;
    hold_violations;
    timings = { preprocess_seconds; analysis_seconds; constraints_seconds };
  }
