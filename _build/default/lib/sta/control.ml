exception Control_error of string

type info = {
  sync_inst : int;
  clock_port : int;
  clock : string;
  inverted : bool;
  control_delay : Hb_util.Time.t;
  has_enables : bool;
}

let error fmt = Format.kasprintf (fun m -> raise (Control_error m)) fmt

(* Per-net summary of the control cone behind it. *)
type cone = {
  (* Clock reaching this net, with control sense and worst delay. *)
  cone_clock : (int * bool * Hb_util.Time.t) option;
  cone_enable : bool;
}

let inverting_of_kind design inst_id = function
  | Hb_cell.Kind.Inv | Hb_cell.Kind.Nand _ | Hb_cell.Kind.Nor _
  | Hb_cell.Kind.Aoi22 | Hb_cell.Kind.Oai22 -> true
  | Hb_cell.Kind.Buf | Hb_cell.Kind.And2 | Hb_cell.Kind.Or2 -> false
  | Hb_cell.Kind.Xor2 | Hb_cell.Kind.Xnor2 | Hb_cell.Kind.Mux2
  | Hb_cell.Kind.Majority3 | Hb_cell.Kind.Macro _ ->
    error "non-monotonic cell %s in a control cone"
      (Hb_netlist.Design.instance design inst_id).Hb_netlist.Design.inst_name

let merge design a b =
  let cone_clock =
    match a.cone_clock, b.cone_clock with
    | None, c | c, None -> c
    | Some (pa, ia, da), Some (pb, ib, db) ->
      if pa <> pb then
        error "control cone reaches two clocks (%s and %s)"
          (Hb_netlist.Design.port design pa).Hb_netlist.Design.port_name
          (Hb_netlist.Design.port design pb).Hb_netlist.Design.port_name
      else if ia <> ib then
        error "control cone mixes both senses of clock %s"
          (Hb_netlist.Design.port design pa).Hb_netlist.Design.port_name
      else Some (pa, ia, Hb_util.Time.max da db)
  in
  { cone_clock; cone_enable = a.cone_enable || b.cone_enable }

let no_cone = { cone_clock = None; cone_enable = false }

(* Memoised depth-first walk over nets, towards the drivers. *)
type walker = {
  design : Hb_netlist.Design.t;
  memo : (int, cone) Hashtbl.t;
  in_progress : (int, unit) Hashtbl.t;
}

let rec cone_of_net w net_id =
  match Hashtbl.find_opt w.memo net_id with
  | Some cone -> cone
  | None ->
    if Hashtbl.mem w.in_progress net_id then
      error "directed cycle in control cone at net %s"
        (Hb_netlist.Design.net w.design net_id).Hb_netlist.Design.net_name;
    Hashtbl.add w.in_progress net_id ();
    let net = Hb_netlist.Design.net w.design net_id in
    let cone =
      List.fold_left
        (fun acc driver -> merge w.design acc (cone_of_endpoint w net_id driver))
        no_cone net.Hb_netlist.Design.drivers
    in
    Hashtbl.remove w.in_progress net_id;
    Hashtbl.add w.memo net_id cone;
    cone

and cone_of_endpoint w net_id = function
  | Hb_netlist.Design.Port p ->
    if (Hb_netlist.Design.port w.design p).Hb_netlist.Design.is_clock then
      { cone_clock = Some (p, false, 0.0); cone_enable = false }
    else { cone_clock = None; cone_enable = true }
  | Hb_netlist.Design.Pin { inst; pin } ->
    let cell = (Hb_netlist.Design.instance w.design inst).Hb_netlist.Design.cell in
    (match cell.Hb_cell.Cell.kind with
     | Hb_cell.Kind.Sync _ -> { cone_clock = None; cone_enable = true }
     | Hb_cell.Kind.Comb comb ->
       let inverts = inverting_of_kind w.design inst comb in
       let load =
         (Hb_netlist.Design.net w.design net_id).Hb_netlist.Design.load_capacitance
       in
       List.fold_left
         (fun acc (arc : Hb_cell.Cell.timing_arc) ->
            match
              Hb_netlist.Design.net_of_pin w.design ~inst
                ~pin:arc.Hb_cell.Cell.from_pin
            with
            | None -> acc
            | Some input_net ->
              let child = cone_of_net w input_net in
              let shifted =
                match child.cone_clock with
                | None -> child
                | Some (p, inv, delay) ->
                  let arc_delay = Hb_cell.Delay_model.worst arc.Hb_cell.Cell.delay ~load in
                  { child with
                    cone_clock = Some (p, inv <> inverts, delay +. arc_delay) }
              in
              merge w.design acc shifted)
         no_cone
         (Hb_cell.Cell.arcs_to cell ~output:pin))

let control_pin_net design ~inst =
  let cell = (Hb_netlist.Design.instance design inst).Hb_netlist.Design.cell in
  match Hb_cell.Cell.control_pins cell with
  | [ pin ] ->
    (match Hb_netlist.Design.net_of_pin design ~inst ~pin:pin.Hb_cell.Cell.pin_name with
     | Some net -> net
     | None ->
       error "instance %s: control pin unconnected"
         (Hb_netlist.Design.instance design inst).Hb_netlist.Design.inst_name)
  | [] ->
    error "instance %s: synchroniser without a control pin"
      (Hb_netlist.Design.instance design inst).Hb_netlist.Design.inst_name
  | _ :: _ :: _ ->
    error "instance %s: multiple control pins unsupported"
      (Hb_netlist.Design.instance design inst).Hb_netlist.Design.inst_name

let trace design ~inst =
  let w = { design; memo = Hashtbl.create 64; in_progress = Hashtbl.create 16 } in
  let net = control_pin_net design ~inst in
  let cone = cone_of_net w net in
  match cone.cone_clock with
  | None ->
    error "instance %s: no clock reaches the control input"
      (Hb_netlist.Design.instance design inst).Hb_netlist.Design.inst_name
  | Some (port, inverted, control_delay) ->
    { sync_inst = inst;
      clock_port = port;
      clock = (Hb_netlist.Design.port design port).Hb_netlist.Design.port_name;
      inverted;
      control_delay;
      has_enables = cone.cone_enable;
    }

let trace_all design =
  (* Share one memo table across all instances: cones overlap heavily in
     clock distribution trees. *)
  let w = { design; memo = Hashtbl.create 256; in_progress = Hashtbl.create 16 } in
  List.map
    (fun inst ->
       let net = control_pin_net design ~inst in
       let cone = cone_of_net w net in
       match cone.cone_clock with
       | None ->
         error "instance %s: no clock reaches the control input"
           (Hb_netlist.Design.instance design inst).Hb_netlist.Design.inst_name
       | Some (port, inverted, control_delay) ->
         ( inst,
           { sync_inst = inst;
             clock_port = port;
             clock = (Hb_netlist.Design.port design port).Hb_netlist.Design.port_name;
             inverted;
             control_delay;
             has_enables = cone.cone_enable;
           } ))
    (Hb_netlist.Design.sync_instances design)
