type t = {
  element_input_slack : Hb_util.Time.t array;
  element_output_slack : Hb_util.Time.t array;
  net_slack : Hb_util.Time.t array;
  net_ready : Hb_util.Time.t array;
  net_required : Hb_util.Time.t array;
  worst : Hb_util.Time.t;
}

let compute ?mode (ctx : Context.t) =
  let mode =
    match mode with
    | Some m -> m
    | None ->
      if ctx.Context.config.Config.rise_fall then `Rise_fall else `Scalar
  in
  let element_count = Elements.count ctx.Context.elements in
  let net_count = Hb_netlist.Design.net_count ctx.Context.design in
  let element_input_slack = Array.make element_count Hb_util.Time.infinity in
  let element_output_slack = Array.make element_count Hb_util.Time.infinity in
  let net_slack = Array.make net_count Hb_util.Time.infinity in
  let net_ready = Array.make net_count Float.nan in
  let net_required = Array.make net_count Float.nan in
  let passes = ctx.Context.passes in
  Array.iter
    (fun (cluster : Cluster.t) ->
       let plan = passes.Passes.plans.(cluster.Cluster.id) in
       List.iter
         (fun cut ->
            let result =
              Block.evaluate ~passes ~elements:ctx.Context.elements ~cluster ~cut
                ~mode ()
            in
            let first = (cut + 1) mod passes.Passes.node_count in
            let origin = passes.Passes.node_time.(first) in
            (* Recorded times stay on the pass's broken-open axis (offset
               by the pass origin, NOT reduced modulo the period):
               reducing would scramble the ready/required ordering for
               windows that span the wrap. Subtract multiples of the
               period to place a value inside the clock period. *)
            let absolute t = t +. origin in
            (* Net slacks and recorded times. *)
            Array.iteri
              (fun local global ->
                 let ready = result.Block.ready.(local) in
                 let required = result.Block.required.(local) in
                 if Hb_util.Time.is_finite ready
                 && Hb_util.Time.is_finite required then begin
                   let slack = required -. ready in
                   if slack < net_slack.(global) then begin
                     net_slack.(global) <- slack;
                     net_ready.(global) <- absolute ready;
                     net_required.(global) <- absolute required
                   end
                 end)
              cluster.Cluster.nets;
            (* Output-terminal (element data-input) slacks: only in the
               assigned pass. *)
            Array.iteri
              (fun output_index (terminal : Cluster.terminal) ->
                 if plan.Passes.assignment.(output_index) = cut then begin
                   let element =
                     Elements.element ctx.Context.elements terminal.Cluster.element
                   in
                   match Block.closure_time passes element ~cut with
                   | None -> ()
                   | Some closure ->
                     let ready = result.Block.ready.(terminal.Cluster.net) in
                     if Hb_util.Time.is_finite ready then begin
                       let slack = closure -. ready in
                       let id = terminal.Cluster.element in
                       if slack < element_input_slack.(id) then
                         element_input_slack.(id) <- slack
                     end
                 end)
              cluster.Cluster.outputs;
            (* Input-terminal (element output) slacks: every pass
               constrains the paths that emanate from the terminal. *)
            Array.iter
              (fun (terminal : Cluster.terminal) ->
                 let element =
                   Elements.element ctx.Context.elements terminal.Cluster.element
                 in
                 match Block.assertion_time passes element ~cut with
                 | None -> ()
                 | Some assertion ->
                   let required = result.Block.required.(terminal.Cluster.net) in
                   if Hb_util.Time.is_finite required then begin
                     let slack = required -. assertion in
                     let id = terminal.Cluster.element in
                     if slack < element_output_slack.(id) then
                       element_output_slack.(id) <- slack
                   end)
              cluster.Cluster.inputs)
         plan.Passes.cuts)
    ctx.Context.table.Cluster.clusters;
  let worst = ref Hb_util.Time.infinity in
  let fold slack = if Hb_util.Time.is_finite slack && slack < !worst then worst := slack in
  Array.iter fold element_input_slack;
  Array.iter fold element_output_slack;
  { element_input_slack; element_output_slack;
    net_slack; net_ready; net_required;
    worst = !worst;
  }

let all_positive t =
  let ok slack = not (Hb_util.Time.le slack 0.0) in
  Array.for_all ok t.element_input_slack
  && Array.for_all ok t.element_output_slack

let element_slack t e =
  Hb_util.Time.min t.element_input_slack.(e) t.element_output_slack.(e)
