(** Pluggable component-delay estimation.

    "By separating component delay-estimation and system-timing analysis,
    different delay-estimation methods may be combined" (paper,
    Section 1). A provider turns one combinational timing arc of one
    instance into worst-case rise and fall propagation delays; the cluster
    builder consumes whichever provider the context was created with.

    Two providers ship:
    - {!lumped} — the empirical standard-cell formula evaluated at the
      net's lumped capacitance (the default, matching the paper's own
      set-up for standard cells);
    - {!rc} — a switch-level-style estimator in the spirit of the paper's
      references [2,3]: the cell's slope acts as a driver resistance into
      a synthetic RC tree for the net, and the arc delay is the intrinsic
      part plus the worst-sink Elmore delay. *)

type t = {
  name : string;
  evaluate :
    design:Hb_netlist.Design.t ->
    inst:int ->
    arc:Hb_cell.Cell.timing_arc ->
    out_net:int ->
    Hb_util.Time.t * Hb_util.Time.t;
    (** worst-case (rise, fall) propagation delays of the arc *)
}

val lumped : t

(** [rc ?parameters ()] builds the Elmore-based provider; [parameters]
    default to {!Hb_rc.Wire_model.default}. *)
val rc : ?parameters:Hb_rc.Wire_model.parameters -> unit -> t
