lib/sta/false_paths.ml: Context Hashtbl Hb_cell Hb_logic Hb_netlist Hb_util List Paths String
