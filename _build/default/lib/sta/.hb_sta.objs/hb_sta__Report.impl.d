lib/sta/report.ml: Algorithm1 Algorithm2 Array Baseline Buffer Cluster Context Elements Engine Format Hb_cell Hb_clock Hb_netlist Hb_sync Hb_util Holdcheck List Paths Printf Slacks Stdlib String
