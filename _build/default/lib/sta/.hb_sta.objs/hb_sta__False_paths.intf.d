lib/sta/false_paths.mli: Context Hb_util Paths
