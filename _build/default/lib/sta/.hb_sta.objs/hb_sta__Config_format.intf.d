lib/sta/config_format.mli: Config
