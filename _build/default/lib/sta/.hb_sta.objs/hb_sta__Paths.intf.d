lib/sta/paths.mli: Context Format Hb_util Slacks
