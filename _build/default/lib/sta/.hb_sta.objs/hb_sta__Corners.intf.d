lib/sta/corners.mli: Algorithm1 Config Delays Hb_clock Hb_netlist Hb_util
