lib/sta/dot_export.ml: Array Buffer Context Elements Hb_cell Hb_netlist Hb_sync Hb_util List Paths Printf Slacks String
