lib/sta/baseline.ml: Array Block Cluster Context Elements Hashtbl Hb_sync Hb_util List Passes Stdlib
