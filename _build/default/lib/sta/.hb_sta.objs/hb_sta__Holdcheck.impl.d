lib/sta/holdcheck.ml: Array Cluster Context Elements Hashtbl Hb_clock Hb_sync Hb_util List
