lib/sta/elements.mli: Config Control Hashtbl Hb_clock Hb_netlist Hb_sync Hb_util
