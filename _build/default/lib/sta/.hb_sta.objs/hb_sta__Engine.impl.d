lib/sta/engine.ml: Algorithm1 Algorithm2 Context Elements Holdcheck Sys
