lib/sta/elements.ml: Array Config Control Format Hashtbl Hb_cell Hb_clock Hb_netlist Hb_sync List Printf
