lib/sta/minperiod.mli: Config Hb_clock Hb_netlist Hb_util
