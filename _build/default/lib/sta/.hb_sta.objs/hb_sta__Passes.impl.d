lib/sta/passes.ml: Array Cluster Elements Format Hashtbl Hb_clock Hb_sync Hb_util List Stdlib
