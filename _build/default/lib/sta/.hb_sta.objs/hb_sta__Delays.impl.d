lib/sta/delays.ml: Hb_cell Hb_netlist Hb_rc Hb_util List Printf
