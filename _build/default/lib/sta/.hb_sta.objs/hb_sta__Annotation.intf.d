lib/sta/annotation.mli: Delays Hb_netlist
