lib/sta/config.mli: Hb_clock Hb_util
