lib/sta/control.mli: Hb_netlist Hb_util
