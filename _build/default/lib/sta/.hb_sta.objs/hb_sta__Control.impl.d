lib/sta/control.ml: Format Hashtbl Hb_cell Hb_netlist Hb_util List
