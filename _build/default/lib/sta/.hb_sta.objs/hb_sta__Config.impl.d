lib/sta/config.ml: Hb_clock Hb_util List Printf
