lib/sta/dot_export.mli: Context Paths Slacks
