lib/sta/algorithm1.mli: Context Slacks
