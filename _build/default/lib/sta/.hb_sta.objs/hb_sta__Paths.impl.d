lib/sta/paths.ml: Array Block Cluster Config Context Elements Format Hb_netlist Hb_sync Hb_util List Passes Slacks
