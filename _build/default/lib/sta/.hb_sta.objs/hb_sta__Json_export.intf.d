lib/sta/json_export.mli: Engine
