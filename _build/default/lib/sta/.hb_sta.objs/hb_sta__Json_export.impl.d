lib/sta/json_export.ml: Algorithm1 Array Baseline Buffer Char Context Elements Engine Float Hb_clock Hb_netlist Hb_sync Hb_util Holdcheck List Printf Report Slacks String
