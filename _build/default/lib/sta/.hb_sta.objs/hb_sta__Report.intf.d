lib/sta/report.mli: Algorithm2 Context Engine Slacks
