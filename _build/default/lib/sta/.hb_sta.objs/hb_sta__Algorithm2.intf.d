lib/sta/algorithm2.mli: Context Hb_util
