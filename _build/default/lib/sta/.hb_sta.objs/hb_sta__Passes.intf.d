lib/sta/passes.mli: Cluster Elements Hashtbl Hb_clock Hb_util
