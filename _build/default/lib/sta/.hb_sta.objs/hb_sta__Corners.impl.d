lib/sta/corners.ml: Algorithm1 Context Delays Hb_util Holdcheck List Printf Slacks
