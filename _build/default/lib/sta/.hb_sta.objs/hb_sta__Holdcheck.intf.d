lib/sta/holdcheck.mli: Context Hb_util
