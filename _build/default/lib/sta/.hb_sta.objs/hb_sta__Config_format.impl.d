lib/sta/config_format.ml: Buffer Config Format Hb_clock List Printf String
