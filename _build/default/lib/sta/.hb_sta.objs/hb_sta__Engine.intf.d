lib/sta/engine.mli: Algorithm1 Algorithm2 Config Context Delays Hb_clock Hb_netlist Holdcheck
