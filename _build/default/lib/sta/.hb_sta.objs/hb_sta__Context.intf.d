lib/sta/context.mli: Cluster Config Delays Elements Hb_clock Hb_netlist Passes
