lib/sta/slacks.mli: Block Context Hb_util
