lib/sta/block.ml: Array Cluster Elements Hb_sync Hb_util List Passes
