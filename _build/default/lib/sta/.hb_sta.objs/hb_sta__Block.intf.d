lib/sta/block.mli: Cluster Elements Hb_sync Hb_util Passes
