lib/sta/annotation.ml: Delays Format Hb_netlist Hb_util List Printf String
