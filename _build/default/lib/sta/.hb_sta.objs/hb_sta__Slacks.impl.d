lib/sta/slacks.ml: Array Block Cluster Config Context Elements Float Hb_netlist Hb_util List Passes
