lib/sta/delays.mli: Hb_cell Hb_netlist Hb_rc Hb_util
