lib/sta/baseline.mli: Context Hb_util
