lib/sta/algorithm1.ml: Array Config Context Elements Hb_sync Hb_util Slacks
