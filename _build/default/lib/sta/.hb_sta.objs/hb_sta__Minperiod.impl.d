lib/sta/minperiod.ml: Algorithm1 Context Hb_clock Hb_util List Option Printf Slacks
