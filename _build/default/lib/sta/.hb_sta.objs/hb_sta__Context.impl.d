lib/sta/context.ml: Cluster Config Elements Hb_clock Hb_netlist Hb_sync Passes
