lib/sta/algorithm2.ml: Array Config Context Elements Float Hb_cell Hb_netlist Hb_sync Hb_util List Option Slacks
