lib/sta/cluster.mli: Delays Elements Hb_netlist Hb_util
