lib/sta/cluster.ml: Array Delays Elements Hashtbl Hb_cell Hb_netlist Hb_util List Printf String
