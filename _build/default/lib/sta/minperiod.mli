(** Minimum-period search.

    The interactive question behind the paper's what-if mode: how fast can
    this design be clocked? The search scales every waveform of a template
    clock system proportionally (keeping duty cycles and phase
    relationships) and bisects on the verdict of Algorithm 1. Worst slack
    is monotone in the period under proportional scaling, so bisection is
    exact up to the tolerance. *)

type result = {
  min_period : Hb_util.Time.t;
      (** smallest period within tolerance at which timing is met *)
  worst_slack_at_min : Hb_util.Time.t;
  evaluations : int;  (** Algorithm 1 runs spent *)
}

(** [search ~design ~template ?config ?lo ?hi ?tolerance ()] bisects in
    [[lo, hi]] (defaults: [lo] = 1% of the template period, [hi] = the
    template period). [tolerance] defaults to 0.01 ns.

    @raise Failure when the design fails even at [hi], or (trivially)
    already passes at [lo]. *)
val search :
  design:Hb_netlist.Design.t ->
  template:Hb_clock.System.t ->
  ?config:Config.t ->
  ?lo:Hb_util.Time.t ->
  ?hi:Hb_util.Time.t ->
  ?tolerance:Hb_util.Time.t ->
  unit ->
  result

(** [scaled_system template ~period] is the template with every waveform's
    rise and width scaled by [period / template period]. *)
val scaled_system :
  Hb_clock.System.t -> period:Hb_util.Time.t -> Hb_clock.System.t
