(** Supplementary (minimum-delay) path constraints — an extension.

    Section 4 of the paper defines, for every combinational path ending at
    a data input controlled by a clock of period [T_y], the supplementary
    constraint [dmin_p > D_p - O_y + O_x - T_y]: "the signal at the data
    input must not be updated more than [T_y] before the input closure
    time". The paper's algorithms deliberately do not act on these
    constraints; Hummingbird-in-OCaml checks and reports them, since a
    violated one means the system misbehaves even with every max-delay
    path fast enough (e.g. under badly asymmetric control-path delays). *)

type violation = {
  element : int;            (** endpoint element id *)
  label : string;
  margin : Hb_util.Time.t;  (** by how much the constraint fails
                                (positive number = size of violation) *)
}

(** [check ctx] evaluates the supplementary constraint for every connected
    input/output terminal pair under the current offsets. Pair enumeration
    (rather than the merged block sweep) is essential here: with multi-rate
    endpoints, an input paired with an early closure replica must not be
    tested against the later replicas, or spurious violations appear.
    Returns one violation per endpoint element (its worst pair), sorted by
    decreasing margin. *)
val check : Context.t -> violation list
