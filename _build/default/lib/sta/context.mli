(** Bundled analysis state: design, clocks, configuration, the element
    table, cluster decomposition and pass plans.

    Building a context performs all of Hummingbird's pre-processing
    (control-cone tracing, replication, cluster generation and the
    Section 7 pass-minimisation); the algorithms then iterate over it. *)

type t = {
  design : Hb_netlist.Design.t;
  system : Hb_clock.System.t;
  config : Config.t;
  elements : Elements.t;
  table : Cluster.table;
  passes : Passes.t;
}

(** [make ~design ~system ?config ?delays ()] runs the pre-processing
    stage. [delays] picks the component-delay estimator (default
    {!Delays.lumped}).
    @raise Elements.Build_error on control-cone violations.
    @raise Cluster.Cycle_error on combinational cycles.
    @raise Passes.Pass_error on clock-edge inconsistencies. *)
val make :
  design:Hb_netlist.Design.t ->
  system:Hb_clock.System.t ->
  ?config:Config.t ->
  ?delays:Delays.t ->
  unit ->
  t

(** [update_design ctx ~design ?delays ()] re-targets the context at a
    topologically identical design (same ports, nets, instances and pin
    connections — only cells/delays may differ, as after gate upsizing).
    Cluster extraction is skipped (arc delays are refreshed in place) and
    the pass plans are reused when every element's ideal edges are
    unchanged. Falls back to full pass re-planning when they are not.
    @raise Invalid_argument when the topology differs. *)
val update_design :
  t -> design:Hb_netlist.Design.t -> ?delays:Delays.t -> unit -> t
