(** The [.hbt] timing-constraint format: a textual carrier for
    {!Config.t}, giving the command line access to per-port timing
    references and analysis knobs.

    {v
    # analysis configuration
    io-clock phi1
    default-input-arrival 2.0
    default-output-required 0.0
    rise-fall on
    max-iterations 200
    partial-divisor 2
    multicycle u42 2
    input din clock phi1 trailing pulse 0 offset 3.5
    output dout clock phi2 leading pulse 0 offset -2.0
    v}

    [input]/[output] lines override the timing reference of one named
    port; the remaining directives set the global knobs. Unmentioned
    fields keep their values from the base configuration. *)

(** [parse ?base text] overlays the directives in [text] on [base]
    (default {!Config.default}).
    @raise Failure with a line-numbered message on malformed input. *)
val parse : ?base:Config.t -> string -> Config.t

val parse_file : ?base:Config.t -> string -> Config.t

(** [to_string config] renders a [.hbt] document that {!parse} reads back
    to an equivalent configuration. *)
val to_string : Config.t -> string
