(** Graphviz export — the stand-in for viewing flagged slow paths in VEM.

    The paper's Hummingbird wrote slow-path flags into the OCT database so
    the VEM graphical editor could highlight them over the placed design;
    here the same information renders as a [dot] digraph: cells and ports
    are nodes, nets are edges, and everything lying on a too-slow path is
    drawn red and bold. *)

(** [design_graph ctx slacks] renders the whole design. Combinational
    cells are boxes, synchronisers are double octagons, ports are ovals;
    nets with non-positive slack (and the cells they touch) are
    highlighted. *)
val design_graph : Context.t -> Slacks.t -> string

(** [path_graph ctx path] renders a single traced path as a chain. *)
val path_graph : Context.t -> Paths.path -> string

(** [write_file ~path text] convenience writer. *)
val write_file : path:string -> string -> unit
