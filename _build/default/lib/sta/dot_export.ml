let escape name =
  let buffer = Buffer.create (String.length name + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' | '\\' -> Buffer.add_char buffer '_'
       | c -> Buffer.add_char buffer c)
    name;
  Buffer.contents buffer

let design_graph (ctx : Context.t) (slacks : Slacks.t) =
  let design = ctx.Context.design in
  let buffer = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  add "digraph %s {\n" (escape design.Hb_netlist.Design.design_name);
  add "  rankdir=LR;\n  node [fontsize=10];\n";
  let slow_net net =
    let slack = slacks.Slacks.net_slack.(net) in
    Hb_util.Time.is_finite slack && Hb_util.Time.le slack 0.0
  in
  (* An instance is hot when any of its nets is slow. *)
  let hot_instance inst =
    List.exists (fun (_, net) -> slow_net net)
      (Hb_netlist.Design.instance design inst).Hb_netlist.Design.connections
  in
  for p = 0 to Hb_netlist.Design.port_count design - 1 do
    let port = Hb_netlist.Design.port design p in
    add "  \"port_%s\" [label=\"%s\" shape=oval%s];\n"
      (escape port.Hb_netlist.Design.port_name)
      (escape port.Hb_netlist.Design.port_name)
      (if port.Hb_netlist.Design.is_clock then " style=dashed" else "")
  done;
  for i = 0 to Hb_netlist.Design.instance_count design - 1 do
    let inst = Hb_netlist.Design.instance design i in
    let shape =
      if Hb_cell.Kind.is_sync inst.Hb_netlist.Design.cell.Hb_cell.Cell.kind
      then "doubleoctagon"
      else "box"
    in
    add "  \"i_%s\" [label=\"%s\\n%s\" shape=%s%s];\n"
      (escape inst.Hb_netlist.Design.inst_name)
      (escape inst.Hb_netlist.Design.inst_name)
      (escape inst.Hb_netlist.Design.cell.Hb_cell.Cell.name)
      shape
      (if hot_instance i then " color=red penwidth=2" else "")
  done;
  (* One edge per (driver, load) pair of every net. *)
  let node_of = function
    | Hb_netlist.Design.Pin { inst; pin = _ } ->
      Printf.sprintf "\"i_%s\""
        (escape
           (Hb_netlist.Design.instance design inst).Hb_netlist.Design.inst_name)
    | Hb_netlist.Design.Port p ->
      Printf.sprintf "\"port_%s\""
        (escape (Hb_netlist.Design.port design p).Hb_netlist.Design.port_name)
  in
  for net_id = 0 to Hb_netlist.Design.net_count design - 1 do
    let net = Hb_netlist.Design.net design net_id in
    let attributes =
      if slow_net net_id then
        Printf.sprintf " [label=\"%s\" color=red penwidth=2 fontcolor=red]"
          (escape net.Hb_netlist.Design.net_name)
      else Printf.sprintf " [label=\"%s\"]" (escape net.Hb_netlist.Design.net_name)
    in
    List.iter
      (fun driver ->
         List.iter
           (fun load ->
              add "  %s -> %s%s;\n" (node_of driver) (node_of load) attributes)
           net.Hb_netlist.Design.loads)
      net.Hb_netlist.Design.drivers
  done;
  add "}\n";
  Buffer.contents buffer

let path_graph (ctx : Context.t) (path : Paths.path) =
  let design = ctx.Context.design in
  let elements = ctx.Context.elements in
  let buffer = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  add "digraph slow_path {\n  rankdir=LR;\n  node [fontsize=10 shape=box];\n";
  let start = Elements.element elements path.Paths.start_element in
  let finish = Elements.element elements path.Paths.end_element in
  add "  \"start\" [label=\"%s\" shape=doubleoctagon];\n"
    (escape start.Hb_sync.Element.label);
  add "  \"end\" [label=\"%s\\nslack %.3f\" shape=doubleoctagon%s];\n"
    (escape finish.Hb_sync.Element.label)
    path.Paths.slack
    (if Hb_util.Time.le path.Paths.slack 0.0 then " color=red penwidth=2" else "");
  let previous = ref "\"start\"" in
  List.iteri
    (fun i (hop : Paths.hop) ->
       let net_name =
         (Hb_netlist.Design.net design hop.Paths.net).Hb_netlist.Design.net_name
       in
       match hop.Paths.via with
       | None ->
         add "  %s -> \"h%d\" [label=\"%s\"];\n" !previous i (escape net_name);
         add "  \"h%d\" [label=\"@%.3f\" shape=plaintext];\n" i hop.Paths.at;
         previous := Printf.sprintf "\"h%d\"" i
       | Some inst ->
         let inst_name =
           (Hb_netlist.Design.instance design inst).Hb_netlist.Design.inst_name
         in
         add "  \"h%d\" [label=\"%s\\n@%.3f\"];\n" i (escape inst_name) hop.Paths.at;
         add "  %s -> \"h%d\" [label=\"%s\"];\n" !previous i (escape net_name);
         previous := Printf.sprintf "\"h%d\"" i)
    path.Paths.hops;
  add "  %s -> \"end\";\n" !previous;
  add "}\n";
  Buffer.contents buffer

let write_file ~path text =
  let oc = open_out path in
  (try output_string oc text with e -> close_out oc; raise e);
  close_out oc
