type t = {
  design : Hb_netlist.Design.t;
  system : Hb_clock.System.t;
  config : Config.t;
  elements : Elements.t;
  table : Cluster.table;
  passes : Passes.t;
}

let make ~design ~system ?(config = Config.default) ?delays () =
  let elements = Elements.build ~design ~system ~config in
  let table = Cluster.extract ~design ~elements ?delays () in
  let passes = Passes.build ~system ~elements ~table in
  { design; system; config; elements; table; passes }

let same_edges a b =
  Elements.count a = Elements.count b
  && (let equal = ref true in
      for i = 0 to Elements.count a - 1 do
        let ea = Elements.element a i and eb = Elements.element b i in
        if ea.Hb_sync.Element.assertion_edge <> eb.Hb_sync.Element.assertion_edge
        || ea.Hb_sync.Element.closure_edge <> eb.Hb_sync.Element.closure_edge
        then equal := false
      done;
      !equal)

let update_design ctx ~design ?delays () =
  if Hb_netlist.Design.instance_count design
     <> Hb_netlist.Design.instance_count ctx.design
  || Hb_netlist.Design.net_count design
     <> Hb_netlist.Design.net_count ctx.design
  then invalid_arg "Context.update_design: topology differs";
  let elements = Elements.build ~design ~system:ctx.system ~config:ctx.config in
  let table = Cluster.refresh_delays ctx.table ~design ?delays () in
  let passes =
    if same_edges elements ctx.elements then ctx.passes
    else Passes.build ~system:ctx.system ~elements ~table
  in
  { ctx with design; elements; table; passes }
