(** Static false-path pruning — a safe refinement of the block method.

    Section 7 of the paper accepts that with the block method " 'false
    paths' (i.e. paths that can not actually be sensitised) can not be
    discarded, and so the generated propagation delays and slacks tend to
    be pessimistic. Pessimistic slacks are safe, however."

    This module quantifies and (partially) removes that pessimism: a path
    is {e provably} false when the static side-input values required to
    propagate a transition along it conflict — some net would have to hold
    both 0 and 1. Only purely conjunctive requirements are collected (see
    {!Hb_logic.Func.side_requirement}), requirements landing on the path's
    own nets are ignored, and gates with unknown or disjunctive behaviour
    impose none; therefore a [true] verdict is a proof of falseness while
    [false] just means "not provably false" — the refinement can only
    remove pessimism, never create optimism. *)

(** [statically_false ctx path] checks one traced path. *)
val statically_false : Context.t -> Paths.path -> bool

type refined = {
  endpoint : int;
  block_slack : Hb_util.Time.t;
      (** slack of the worst path, false or not — what the block method
          reports *)
  true_slack : Hb_util.Time.t option;
      (** slack of the worst not-provably-false path among the [limit]
          worst; [None] when every examined path was false *)
  examined : int;
  false_skipped : int;
}

(** [refine_endpoint ctx ~endpoint ?limit ()] enumerates up to [limit]
    (default 64) worst paths into the element's data input and locates the
    worst sensitisable one. [None] when the endpoint has no constrained
    paths. *)
val refine_endpoint :
  Context.t -> endpoint:int -> ?limit:int -> unit -> refined option
