type corner = {
  corner_name : string;
  delay_scale : float;
}

let typical =
  [ { corner_name = "fast"; delay_scale = 0.8 };
    { corner_name = "nominal"; delay_scale = 1.0 };
    { corner_name = "slow"; delay_scale = 1.25 };
  ]

type result = {
  corner : corner;
  status : Algorithm1.status;
  worst_slack : Hb_util.Time.t;
  hold_violations : int;
}

type report = {
  results : result list;
  all_corners_met : bool;
  any_hold_violation : bool;
}

let scaled_delays ~base ~scale =
  if scale <= 0.0 then invalid_arg "Corners.scaled_delays: scale must be positive";
  { Delays.name = Printf.sprintf "%s x%g" base.Delays.name scale;
    evaluate =
      (fun ~design ~inst ~arc ~out_net ->
         let rise, fall = base.Delays.evaluate ~design ~inst ~arc ~out_net in
         (rise *. scale, fall *. scale));
  }

let analyse ~design ~system ?config ?(base = Delays.lumped)
    ?(corners = typical) () =
  let results =
    List.map
      (fun corner ->
         let delays = scaled_delays ~base ~scale:corner.delay_scale in
         let ctx = Context.make ~design ~system ?config ~delays () in
         let outcome = Algorithm1.run ctx in
         let hold = Holdcheck.check ctx in
         { corner;
           status = outcome.Algorithm1.status;
           worst_slack = outcome.Algorithm1.final.Slacks.worst;
           hold_violations = List.length hold;
         })
      corners
  in
  { results;
    all_corners_met =
      List.for_all (fun r -> r.status = Algorithm1.Meets_timing) results;
    any_hold_violation = List.exists (fun r -> r.hold_violations > 0) results;
  }

let to_table report =
  let rows =
    List.map
      (fun r ->
         [ r.corner.corner_name;
           Printf.sprintf "%.2f" r.corner.delay_scale;
           Printf.sprintf "%.3f" r.worst_slack;
           (match r.status with
            | Algorithm1.Meets_timing -> "ok"
            | Algorithm1.Slow_paths -> "TOO SLOW");
           string_of_int r.hold_violations ])
      report.results
  in
  Hb_util.Table.render
    ~header:[ "corner"; "scale"; "worst slack"; "verdict"; "hold violations" ]
    ~align:Hb_util.Table.[ Left; Right; Right; Left; Right ]
    rows
