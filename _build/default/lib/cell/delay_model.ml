type arc = {
  intrinsic : Hb_util.Time.t;
  slope : float;
}

type t = {
  rise : arc;
  fall : arc;
}

let arc ~intrinsic ~slope =
  if intrinsic < 0.0 then invalid_arg "Delay_model.arc: negative intrinsic";
  if slope < 0.0 then invalid_arg "Delay_model.arc: negative slope";
  { intrinsic; slope }

let make ~rise ~fall = { rise; fall }
let symmetric a = { rise = a; fall = a }

let eval_arc a ~load =
  if load < 0.0 then invalid_arg "Delay_model.eval_arc: negative load";
  a.intrinsic +. (a.slope *. load)

let worst t ~load =
  Hb_util.Time.max (eval_arc t.rise ~load) (eval_arc t.fall ~load)

let best t ~load =
  Hb_util.Time.min (eval_arc t.rise ~load) (eval_arc t.fall ~load)

let scale t factor =
  if factor <= 0.0 then invalid_arg "Delay_model.scale: factor must be positive";
  let scale_arc a = { intrinsic = a.intrinsic *. factor; slope = a.slope *. factor } in
  { rise = scale_arc t.rise; fall = scale_arc t.fall }

let pp ppf t =
  Format.fprintf ppf "rise(%.3f + %.3f*L) fall(%.3f + %.3f*L)"
    t.rise.intrinsic t.rise.slope t.fall.intrinsic t.fall.slope
