(** Standard-cell descriptions.

    A cell couples a {!Kind.t} with pins, area, and timing data. For
    combinational cells the timing data is a set of input→output arcs with
    {!Delay_model.t} characterisations; for synchronising elements it is the
    parameter triple of the paper's Section 5 models ([Dsetup], [D_cz],
    [D_dz]). *)

type pin_role =
  | Data_in
  | Data_out
  | Control_in  (** clock/control pin of a synchronising element *)

type pin = {
  pin_name : string;
  role : pin_role;
  capacitance : float;  (** pF presented to the driving net *)
}

(** One characterised combinational timing arc. *)
type timing_arc = {
  from_pin : string;
  to_pin : string;
  delay : Delay_model.t;
}

type timing =
  | Comb_timing of timing_arc list
  | Sync_timing of {
      setup : Hb_util.Time.t;  (** [Dsetup]: data set-up time *)
      d_cz : Hb_util.Time.t;   (** control-input-to-output delay *)
      d_dz : Hb_util.Time.t;   (** data-input-to-output delay (transparent
                                   latch and tristate only) *)
    }

type t = private {
  name : string;
  kind : Kind.t;
  pins : pin list;
  timing : timing;
  area : float;        (** in equivalent-gate units *)
  drive : int;         (** drive strength index: 1, 2, 4, ... *)
}

(** [make ~name ~kind ~pins ~timing ~area ~drive] validates and builds a
    cell.
    @raise Invalid_argument when pins referenced by arcs are missing, when a
    combinational cell is given [Sync_timing] (or vice versa), when a
    synchronising cell lacks the [Control_in]/[Data_in]/[Data_out] pins the
    generic model requires, or when numeric fields are negative. *)
val make :
  name:string ->
  kind:Kind.t ->
  pins:pin list ->
  timing:timing ->
  area:float ->
  drive:int ->
  t

(** [find_pin t name] looks a pin up by name. *)
val find_pin : t -> string -> pin option

val input_pins : t -> pin list
val output_pins : t -> pin list
val control_pins : t -> pin list

(** [arcs_to t ~output] lists the combinational arcs ending at [output];
    empty for synchronising cells. *)
val arcs_to : t -> output:string -> timing_arc list

(** [arc_between t ~input ~output] finds the arc for the given pin pair. *)
val arc_between : t -> input:string -> output:string -> timing_arc option

(** [sync_parameters t] returns [(setup, d_cz, d_dz)].
    @raise Invalid_argument on a combinational cell. *)
val sync_parameters : t -> Hb_util.Time.t * Hb_util.Time.t * Hb_util.Time.t

(** [with_scaled_delays t ~factor ~suffix] derives a cell whose arcs (or
    sync delays) are scaled by [factor] and whose name gains [suffix]; area
    scales by [1/factor] to model the speed/area trade of gate sizing. *)
val with_scaled_delays : t -> factor:float -> suffix:string -> t

val pp : Format.formatter -> t -> unit
