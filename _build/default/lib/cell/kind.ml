type combinational =
  | Inv
  | Buf
  | Nand of int
  | Nor of int
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi22
  | Oai22
  | Mux2
  | Majority3
  | Macro of int

type synchroniser =
  | Edge_ff
  | Transparent_latch
  | Tristate_driver

type t =
  | Comb of combinational
  | Sync of synchroniser

let is_sync = function Sync _ -> true | Comb _ -> false
let is_comb = function Comb _ -> true | Sync _ -> false

let unate_sense = function
  | Inv | Nand _ | Nor _ | Aoi22 | Oai22 -> `Negative
  | Buf | And2 | Or2 -> `Positive
  | Xor2 | Xnor2 | Mux2 | Majority3 | Macro _ -> `Non_unate

let comb_fan_in = function
  | Inv | Buf -> 1
  | Nand n | Nor n -> n
  | And2 | Or2 | Xor2 | Xnor2 -> 2
  | Aoi22 | Oai22 -> 4
  | Mux2 | Majority3 -> 3
  | Macro n -> n

let pp ppf = function
  | Comb Inv -> Format.pp_print_string ppf "inv"
  | Comb Buf -> Format.pp_print_string ppf "buf"
  | Comb (Nand n) -> Format.fprintf ppf "nand%d" n
  | Comb (Nor n) -> Format.fprintf ppf "nor%d" n
  | Comb And2 -> Format.pp_print_string ppf "and2"
  | Comb Or2 -> Format.pp_print_string ppf "or2"
  | Comb Xor2 -> Format.pp_print_string ppf "xor2"
  | Comb Xnor2 -> Format.pp_print_string ppf "xnor2"
  | Comb Aoi22 -> Format.pp_print_string ppf "aoi22"
  | Comb Oai22 -> Format.pp_print_string ppf "oai22"
  | Comb Mux2 -> Format.pp_print_string ppf "mux2"
  | Comb Majority3 -> Format.pp_print_string ppf "maj3"
  | Comb (Macro n) -> Format.fprintf ppf "macro%d" n
  | Sync Edge_ff -> Format.pp_print_string ppf "dff"
  | Sync Transparent_latch -> Format.pp_print_string ppf "latch"
  | Sync Tristate_driver -> Format.pp_print_string ppf "tsbuf"

let to_string t = Format.asprintf "%a" pp t
let equal (a : t) (b : t) = a = b
