(** Cell catalogues.

    A library maps cell names to {!Cell.t} descriptions and knows the drive
    variants of each logical cell so the re-synthesis loop (Algorithm 3) can
    upsize a cell on a slow path. {!default} is a synthetic CMOS
    standard-cell library standing in for the Berkeley/MSU library used by
    the paper's experiments. *)

type t

(** [create cells] indexes the given cells by name.
    @raise Invalid_argument on duplicate names. *)
val create : Cell.t list -> t

val find : t -> string -> Cell.t option

(** @raise Not_found when the cell is absent. *)
val find_exn : t -> string -> Cell.t

val names : t -> string list
val cells : t -> Cell.t list
val size : t -> int

(** [upsize t cell] returns the same logical cell at the next higher drive
    strength, or [None] when [cell] is already the strongest variant. *)
val upsize : t -> Cell.t -> Cell.t option

(** [downsize t cell] is the inverse of {!upsize}. *)
val downsize : t -> Cell.t -> Cell.t option

(** The built-in synthetic CMOS library: inverters, buffers, 2–4 input
    NAND/NOR, AND/OR/XOR/XNOR, AOI/OAI, 2:1 mux, majority (carry) cell —
    each at drive strengths ×1, ×2 and ×4 — plus a trailing-edge flip-flop
    ([dff], and [dff2] with complementary q/qb outputs), a transparent
    latch ([latch]/[latch2]) and a clocked tristate driver ([tsbuf]).
    Delays are in the single-nanosecond range, typical of late-1980s 2 µm
    standard cells. *)
val default : unit -> t
