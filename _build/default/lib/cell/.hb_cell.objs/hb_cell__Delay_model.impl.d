lib/cell/delay_model.ml: Format Hb_util
