lib/cell/kind.ml: Format
