lib/cell/library.ml: Array Cell Delay_model Kind List Map Option Printf String
