lib/cell/cell.ml: Delay_model Format Hb_util Kind List Printf String
