lib/cell/cell.mli: Delay_model Format Hb_util Kind
