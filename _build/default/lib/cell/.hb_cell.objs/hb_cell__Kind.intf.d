lib/cell/kind.mli: Format
