lib/cell/delay_model.mli: Format Hb_util
