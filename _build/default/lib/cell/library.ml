module String_map = Map.Make (String)

type t = {
  by_name : Cell.t String_map.t;
  (* Drive variants of each logical cell, sorted by increasing drive. The
     key is the cell's base name (name without drive suffix). *)
  families : Cell.t list String_map.t;
}

(* Drive suffixes are "_x<d>"; the base name is everything before it. *)
let base_name name =
  match String.rindex_opt name '_' with
  | Some i
    when i + 2 <= String.length name - 1
      && name.[i + 1] = 'x'
      && String.for_all (fun c -> c >= '0' && c <= '9')
           (String.sub name (i + 2) (String.length name - i - 2)) ->
    String.sub name 0 i
  | Some _ | None -> name

let create cells =
  let by_name =
    List.fold_left
      (fun acc (c : Cell.t) ->
         if String_map.mem c.Cell.name acc then
           invalid_arg
             (Printf.sprintf "Library.create: duplicate cell %s" c.Cell.name)
         else String_map.add c.Cell.name c acc)
      String_map.empty cells
  in
  let families =
    List.fold_left
      (fun acc (c : Cell.t) ->
         let key = base_name c.Cell.name in
         let existing = Option.value ~default:[] (String_map.find_opt key acc) in
         String_map.add key (c :: existing) acc)
      String_map.empty cells
  in
  let families =
    String_map.map
      (fun variants ->
         List.sort (fun (a : Cell.t) b -> compare a.Cell.drive b.Cell.drive) variants)
      families
  in
  { by_name; families }

let find t name = String_map.find_opt name t.by_name

let find_exn t name =
  match find t name with
  | Some c -> c
  | None -> raise Not_found

let names t = List.map fst (String_map.bindings t.by_name)
let cells t = List.map snd (String_map.bindings t.by_name)
let size t = String_map.cardinal t.by_name

let family t (cell : Cell.t) =
  Option.value ~default:[ cell ]
    (String_map.find_opt (base_name cell.Cell.name) t.families)

let upsize t cell =
  let rec after = function
    | [] -> None
    | (c : Cell.t) :: rest ->
      if c.Cell.drive > cell.Cell.drive then Some c else after rest
  in
  after (family t cell)

let downsize t cell =
  let rec before best = function
    | [] -> best
    | (c : Cell.t) :: rest ->
      if c.Cell.drive < cell.Cell.drive then before (Some c) rest else best
  in
  before None (family t cell)

(* ------------------------------------------------------------------ *)
(* Default synthetic library                                          *)
(* ------------------------------------------------------------------ *)

let input_names = [| "a"; "b"; "c"; "d" |]

let data_in name cap = { Cell.pin_name = name; role = Cell.Data_in; capacitance = cap }
let data_out name = { Cell.pin_name = name; role = Cell.Data_out; capacitance = 0.0 }
let control name cap = { Cell.pin_name = name; role = Cell.Control_in; capacitance = cap }

(* One combinational cell family: three drive variants. Upsizing divides
   the drive-dependent slope while the input capacitance grows, which is
   how real libraries trade speed against load presented upstream. *)
let comb_family ~kind ~name ~fan_in ~intrinsic ~slope ~area =
  let variant drive =
    let d = float_of_int drive in
    let pins =
      List.init fan_in (fun i -> data_in input_names.(i) (0.010 *. d))
      @ [ data_out "y" ]
    in
    let delay =
      Delay_model.make
        ~rise:(Delay_model.arc ~intrinsic ~slope:(slope /. d))
        ~fall:(Delay_model.arc ~intrinsic:(intrinsic *. 0.9) ~slope:(slope *. 0.85 /. d))
    in
    let arcs =
      List.init fan_in (fun i ->
          { Cell.from_pin = input_names.(i); to_pin = "y"; delay })
    in
    Cell.make
      ~name:(Printf.sprintf "%s_x%d" name drive)
      ~kind ~pins ~timing:(Cell.Comb_timing arcs)
      ~area:(area *. d) ~drive
  in
  [ variant 1; variant 2; variant 4 ]

let sync_cell ?(complementary = false) ~kind ~name ~setup ~d_cz ~d_dz ~area () =
  let pins =
    [ data_in "d" 0.012; control "ck" 0.020; data_out "q" ]
    @ (if complementary then [ data_out "qb" ] else [])
  in
  Cell.make ~name ~kind ~pins
    ~timing:(Cell.Sync_timing { setup; d_cz; d_dz })
    ~area ~drive:1

let default () =
  let open Kind in
  let comb = List.concat
      [ comb_family ~kind:(Comb Inv) ~name:"inv" ~fan_in:1
          ~intrinsic:0.35 ~slope:8.0 ~area:1.0;
        comb_family ~kind:(Comb Buf) ~name:"buf" ~fan_in:1
          ~intrinsic:0.70 ~slope:6.0 ~area:1.5;
        comb_family ~kind:(Comb (Nand 2)) ~name:"nand2" ~fan_in:2
          ~intrinsic:0.50 ~slope:9.0 ~area:1.5;
        comb_family ~kind:(Comb (Nand 3)) ~name:"nand3" ~fan_in:3
          ~intrinsic:0.65 ~slope:10.0 ~area:2.0;
        comb_family ~kind:(Comb (Nand 4)) ~name:"nand4" ~fan_in:4
          ~intrinsic:0.80 ~slope:11.0 ~area:2.5;
        comb_family ~kind:(Comb (Nor 2)) ~name:"nor2" ~fan_in:2
          ~intrinsic:0.55 ~slope:10.0 ~area:1.5;
        comb_family ~kind:(Comb (Nor 3)) ~name:"nor3" ~fan_in:3
          ~intrinsic:0.75 ~slope:12.0 ~area:2.0;
        comb_family ~kind:(Comb (Nor 4)) ~name:"nor4" ~fan_in:4
          ~intrinsic:0.95 ~slope:14.0 ~area:2.5;
        comb_family ~kind:(Comb And2) ~name:"and2" ~fan_in:2
          ~intrinsic:0.85 ~slope:7.0 ~area:2.0;
        comb_family ~kind:(Comb Or2) ~name:"or2" ~fan_in:2
          ~intrinsic:0.90 ~slope:7.0 ~area:2.0;
        comb_family ~kind:(Comb Xor2) ~name:"xor2" ~fan_in:2
          ~intrinsic:1.10 ~slope:10.0 ~area:3.0;
        comb_family ~kind:(Comb Xnor2) ~name:"xnor2" ~fan_in:2
          ~intrinsic:1.15 ~slope:10.0 ~area:3.0;
        comb_family ~kind:(Comb Aoi22) ~name:"aoi22" ~fan_in:4
          ~intrinsic:0.95 ~slope:11.0 ~area:2.5;
        comb_family ~kind:(Comb Oai22) ~name:"oai22" ~fan_in:4
          ~intrinsic:0.95 ~slope:11.0 ~area:2.5;
        comb_family ~kind:(Comb Mux2) ~name:"mux2" ~fan_in:3
          ~intrinsic:1.05 ~slope:9.0 ~area:3.0;
        comb_family ~kind:(Comb Majority3) ~name:"maj3" ~fan_in:3
          ~intrinsic:1.00 ~slope:10.0 ~area:3.0;
      ]
  in
  let sync =
    [ sync_cell ~kind:(Sync Edge_ff) ~name:"dff"
        ~setup:0.80 ~d_cz:1.20 ~d_dz:0.0 ~area:6.0 ();
      sync_cell ~complementary:true ~kind:(Sync Edge_ff) ~name:"dff2"
        ~setup:0.80 ~d_cz:1.25 ~d_dz:0.0 ~area:6.5 ();
      sync_cell ~kind:(Sync Transparent_latch) ~name:"latch"
        ~setup:0.60 ~d_cz:0.90 ~d_dz:0.70 ~area:4.0 ();
      sync_cell ~complementary:true ~kind:(Sync Transparent_latch)
        ~name:"latch2" ~setup:0.60 ~d_cz:0.95 ~d_dz:0.75 ~area:4.5 ();
      sync_cell ~kind:(Sync Tristate_driver) ~name:"tsbuf"
        ~setup:0.40 ~d_cz:0.80 ~d_dz:0.60 ~area:2.0 ();
    ]
  in
  create (comb @ sync)
