type pin_role =
  | Data_in
  | Data_out
  | Control_in

type pin = {
  pin_name : string;
  role : pin_role;
  capacitance : float;
}

type timing_arc = {
  from_pin : string;
  to_pin : string;
  delay : Delay_model.t;
}

type timing =
  | Comb_timing of timing_arc list
  | Sync_timing of {
      setup : Hb_util.Time.t;
      d_cz : Hb_util.Time.t;
      d_dz : Hb_util.Time.t;
    }

type t = {
  name : string;
  kind : Kind.t;
  pins : pin list;
  timing : timing;
  area : float;
  drive : int;
}

let find_pin t name =
  List.find_opt (fun p -> String.equal p.pin_name name) t.pins

let has_pin pins name =
  List.exists (fun p -> String.equal p.pin_name name) pins

let validate ~name ~kind ~pins ~timing ~area ~drive =
  let fail fmt = Format.kasprintf invalid_arg ("Cell.make(%s): " ^^ fmt) name in
  if area < 0.0 then fail "negative area";
  if drive < 1 then fail "drive must be >= 1";
  List.iter
    (fun p -> if p.capacitance < 0.0 then fail "pin %s: negative capacitance" p.pin_name)
    pins;
  let names = List.map (fun p -> p.pin_name) pins in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then fail "duplicate pin names";
  (match kind, timing with
   | Kind.Comb _, Comb_timing arcs ->
     List.iter
       (fun a ->
          if not (has_pin pins a.from_pin) then fail "arc references unknown pin %s" a.from_pin;
          if not (has_pin pins a.to_pin) then fail "arc references unknown pin %s" a.to_pin)
       arcs
   | Kind.Sync _, Sync_timing { setup; d_cz; d_dz } ->
     if setup < 0.0 || d_cz < 0.0 || d_dz < 0.0 then
       fail "negative synchroniser timing parameter";
     let role_present r = List.exists (fun p -> p.role = r) pins in
     if not (role_present Data_in) then fail "synchroniser lacks a data input pin";
     if not (role_present Data_out) then fail "synchroniser lacks a data output pin";
     if not (role_present Control_in) then fail "synchroniser lacks a control pin"
   | Kind.Comb _, Sync_timing _ -> fail "combinational cell with synchroniser timing"
   | Kind.Sync _, Comb_timing _ -> fail "synchroniser with combinational timing")

let make ~name ~kind ~pins ~timing ~area ~drive =
  validate ~name ~kind ~pins ~timing ~area ~drive;
  { name; kind; pins; timing; area; drive }

let input_pins t = List.filter (fun p -> p.role = Data_in) t.pins
let output_pins t = List.filter (fun p -> p.role = Data_out) t.pins
let control_pins t = List.filter (fun p -> p.role = Control_in) t.pins

let arcs_to t ~output =
  match t.timing with
  | Sync_timing _ -> []
  | Comb_timing arcs -> List.filter (fun a -> String.equal a.to_pin output) arcs

let arc_between t ~input ~output =
  match t.timing with
  | Sync_timing _ -> None
  | Comb_timing arcs ->
    List.find_opt
      (fun a -> String.equal a.from_pin input && String.equal a.to_pin output)
      arcs

let sync_parameters t =
  match t.timing with
  | Sync_timing { setup; d_cz; d_dz } -> (setup, d_cz, d_dz)
  | Comb_timing _ ->
    invalid_arg (Printf.sprintf "Cell.sync_parameters: %s is combinational" t.name)

let with_scaled_delays t ~factor ~suffix =
  if factor <= 0.0 then invalid_arg "Cell.with_scaled_delays: factor must be positive";
  let timing =
    match t.timing with
    | Comb_timing arcs ->
      Comb_timing
        (List.map (fun a -> { a with delay = Delay_model.scale a.delay factor }) arcs)
    | Sync_timing { setup; d_cz; d_dz } ->
      Sync_timing
        { setup = setup *. factor; d_cz = d_cz *. factor; d_dz = d_dz *. factor }
  in
  { t with name = t.name ^ suffix; timing; area = t.area /. factor }

let pp ppf t =
  Format.fprintf ppf "%s (%a, drive x%d, %d pins)"
    t.name Kind.pp t.kind t.drive (List.length t.pins)
