(** Classification of standard cells.

    The analyser distinguishes only combinational switching elements from
    synchronising elements (paper, Section 3); the finer combinational
    classification exists so workload generators can build realistic logic
    and so reports read naturally. *)

type combinational =
  | Inv
  | Buf
  | Nand of int  (** fan-in, 2..4 *)
  | Nor of int   (** fan-in, 2..4 *)
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi22        (** 2-2 and-or-invert *)
  | Oai22        (** 2-2 or-and-invert *)
  | Mux2
  | Majority3    (** carry cell *)
  | Macro of int
      (** collapsed hierarchical module with the given fan-in; produced by
          [Hb_netlist.Hierarchy.collapse], never found in libraries *)

type synchroniser =
  | Edge_ff
      (** trailing-edge triggered latch: input closure and output assertion
          both controlled by the trailing control edge (paper, Section 5) *)
  | Transparent_latch
      (** level-sensitive latch: leading edge asserts the output, trailing
          edge closes the input *)
  | Tristate_driver
      (** clocked tristate driver, "modelled in the same way as transparent
          latches" (paper, Section 5) *)

type t =
  | Comb of combinational
  | Sync of synchroniser

val is_sync : t -> bool
val is_comb : t -> bool

(** Unateness of a combinational function in each of its inputs, used by
    the rise/fall-separated analysis (the paper adopts the technique of
    Bening et al. [7], "calculating separately rising and falling signal
    settling time"). [`Positive`]: output rises when an input rises;
    [`Negative`]: output falls when an input rises; [`Non_unate`]: either
    can happen (xor/mux/majority/macro). *)
val unate_sense : combinational -> [ `Positive | `Negative | `Non_unate ]

(** Number of logic data inputs the combinational function consumes. *)
val comb_fan_in : combinational -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
