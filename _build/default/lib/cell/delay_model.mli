(** Empirical propagation-delay estimation for standard cells.

    The paper deliberately separates component delay estimation from system
    timing analysis (Section 1): Hummingbird consumes per-arc maximum (and
    minimum) propagation delays produced by "empirical delay estimation
    formulae [that] take into account the connected loads". This module is
    that estimator: a linear rise/fall model

      delay = intrinsic + drive_resistance * load_capacitance

    which is the classic standard-cell characterisation of the era. Rising
    and falling transitions are modelled separately, following Bening et
    al. [7] as the paper does. *)

(** Delay of one timing arc for one transition direction. *)
type arc = {
  intrinsic : Hb_util.Time.t;  (** fixed part, ns *)
  slope : float;               (** ns per pF of load *)
}

(** Rise/fall pair for one input-to-output arc of a cell. *)
type t = {
  rise : arc;  (** output rising *)
  fall : arc;  (** output falling *)
}

(** [arc ~intrinsic ~slope] builds one direction. Both parameters must be
    non-negative. *)
val arc : intrinsic:Hb_util.Time.t -> slope:float -> arc

(** [make ~rise ~fall] pairs the two directions. *)
val make : rise:arc -> fall:arc -> t

(** [symmetric a] uses the same characterisation for both directions. *)
val symmetric : arc -> t

(** [eval_arc a ~load] evaluates one direction at [load] pF. *)
val eval_arc : arc -> load:float -> Hb_util.Time.t

(** [worst t ~load] is the larger of the rise and fall delays at [load] —
    the maximum component propagation delay the analyser uses for path
    (max-delay) constraints. *)
val worst : t -> load:float -> Hb_util.Time.t

(** [best t ~load] is the smaller of the two — used for the supplementary
    (minimum-delay) path constraints. *)
val best : t -> load:float -> Hb_util.Time.t

(** [scale t factor] multiplies both intrinsics and slopes by [factor];
    [factor < 1] models speeding a cell up by upsizing (the re-synthesis
    operator of Algorithm 3). [factor] must be positive. *)
val scale : t -> float -> t

val pp : Format.formatter -> t -> unit
