(** The offset algebra of the generic synchronising-element model
    (paper, Sections 4–5, Figures 2–3).

    A synchronising element carries four terminal offsets:

    - [o_dc] — input closure caused by closure control, relative to the
      ideal input closure time;
    - [o_dz] — input closure corresponding to output assertion, same
      reference;
    - [o_zd] — output assertion resulting from input timing, relative to
      the ideal output assertion time;
    - [o_zc] — output assertion caused by assertion control, same
      reference.

    The actual input closure offset is [min(o_dc, o_dz)] and the actual
    output assertion offset is [max(o_zc, o_zd)]. The simplified model of
    Figure 2(b) fixes [o_dc = -Dsetup] and, for the transparent latch,
    couples [o_zd = W + o_dz + D_dz] (Figure 3), leaving [o_dz] as the
    single degree of freedom that slack transfer moves.

    This module is purely functional: it computes the derived offsets,
    their legal interval, and the transfer headrooms from the element
    parameters and the current [o_dz] value. The mutable per-replica state
    lives in {!Element}. *)

type params = {
  setup : Hb_util.Time.t;        (** [Dsetup] *)
  d_cz : Hb_util.Time.t;         (** control-to-output delay *)
  d_dz : Hb_util.Time.t;         (** data-to-output delay *)
  pulse_width : Hb_util.Time.t;  (** [W], width of the controlling pulse as
                                     seen at the control input *)
  control_delay : Hb_util.Time.t;
      (** [O_at]: arrival offset of control transitions relative to the
          clock edge (the control path delay); non-negative *)
}

(** [validate p] checks all parameters are non-negative and the pulse width
    is positive.
    @raise Invalid_argument otherwise. *)
val validate : params -> unit

(** [o_dz_interval kind p] is the legal interval for the free offset
    [o_dz]:
    - transparent latch / tristate driver: [[-(W + D_dz), -D_dz]];
    - trailing-edge flip-flop: the degenerate interval [[0, 0]] (no
      freedom — "the timing of the data input and output are
      independent"). *)
val o_dz_interval : Hb_cell.Kind.synchroniser -> params -> Hb_util.Interval.t

(** [initial_o_dz kind p] is the default starting point for Algorithm 1:
    the latest legal value (input closure at the end of the control
    pulse). *)
val initial_o_dz : Hb_cell.Kind.synchroniser -> params -> Hb_util.Time.t

(** [o_zd kind p ~o_dz] derives the data-driven output assertion offset:
    [W + o_dz + D_dz] for transparent elements, [0] for the flip-flop. *)
val o_zd : Hb_cell.Kind.synchroniser -> params -> o_dz:Hb_util.Time.t -> Hb_util.Time.t

(** [closure_offset kind p ~o_dz] is the effective input closure offset
    [min(-Dsetup, o_dz)], relative to the ideal input closure time. *)
val closure_offset :
  Hb_cell.Kind.synchroniser -> params -> o_dz:Hb_util.Time.t -> Hb_util.Time.t

(** [assertion_offset kind p ~o_dz] is the effective output assertion
    offset [max(O_at + D_cz, o_zd)], relative to the ideal output assertion
    time. *)
val assertion_offset :
  Hb_cell.Kind.synchroniser -> params -> o_dz:Hb_util.Time.t -> Hb_util.Time.t

(** [forward_headroom kind p ~o_dz] is [m] for forward transfer/snatch: how
    far [o_dz] may decrease. *)
val forward_headroom :
  Hb_cell.Kind.synchroniser -> params -> o_dz:Hb_util.Time.t -> Hb_util.Time.t

(** [backward_headroom kind p ~o_dz] is [m] for backward transfer/snatch:
    how far [o_dz] may increase. *)
val backward_headroom :
  Hb_cell.Kind.synchroniser -> params -> o_dz:Hb_util.Time.t -> Hb_util.Time.t
