lib/sync/model.mli: Hb_cell Hb_util
