lib/sync/element.mli: Format Hb_cell Hb_clock Hb_util Model
