lib/sync/element.ml: Format Hb_cell Hb_clock Hb_util Model
