lib/sync/model.ml: Hb_cell Hb_util
