type params = {
  setup : Hb_util.Time.t;
  d_cz : Hb_util.Time.t;
  d_dz : Hb_util.Time.t;
  pulse_width : Hb_util.Time.t;
  control_delay : Hb_util.Time.t;
}

let validate p =
  if p.setup < 0.0 then invalid_arg "Model.validate: negative setup";
  if p.d_cz < 0.0 then invalid_arg "Model.validate: negative d_cz";
  if p.d_dz < 0.0 then invalid_arg "Model.validate: negative d_dz";
  if p.pulse_width <= 0.0 then invalid_arg "Model.validate: pulse width must be positive";
  if p.control_delay < 0.0 then invalid_arg "Model.validate: negative control delay"

let is_transparent = function
  | Hb_cell.Kind.Transparent_latch | Hb_cell.Kind.Tristate_driver -> true
  | Hb_cell.Kind.Edge_ff -> false

let o_dz_interval kind p =
  if is_transparent kind then
    Hb_util.Interval.make ~lo:(-.(p.pulse_width +. p.d_dz)) ~hi:(-.p.d_dz)
  else Hb_util.Interval.point 0.0

let initial_o_dz kind p = Hb_util.Interval.hi (o_dz_interval kind p)

let o_zd kind p ~o_dz =
  if is_transparent kind then p.pulse_width +. o_dz +. p.d_dz else 0.0

let closure_offset kind p ~o_dz =
  if is_transparent kind then Hb_util.Time.min (-.p.setup) o_dz else -.p.setup

let assertion_offset kind p ~o_dz =
  Hb_util.Time.max (p.control_delay +. p.d_cz) (o_zd kind p ~o_dz)

let forward_headroom kind p ~o_dz =
  Hb_util.Interval.headroom_down o_dz (o_dz_interval kind p)

let backward_headroom kind p ~o_dz =
  Hb_util.Interval.headroom_up o_dz (o_dz_interval kind p)
