(* Tests for the workload generators: Table 1 cell counts, determinism,
   structural sanity and the Figure 1 configuration. *)

let lib = Hb_cell.Library.default ()

let stats design = Hb_netlist.Stats.compute design

(* ------------------------------------------------------------------ *)
(* Cloud                                                              *)
(* ------------------------------------------------------------------ *)

let test_cloud_grows_requested_gates () =
  let b = Hb_netlist.Builder.create ~name:"c" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"i0" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_port b ~name:"i1" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  let rng = Hb_util.Rng.create 5L in
  let cloud =
    Hb_workload.Cloud.grow b ~rng ~prefix:"t" ~inputs:[ "i0"; "i1" ]
      ~gates:25 ~outputs:3 ()
  in
  Alcotest.(check int) "gate count" 25 cloud.Hb_workload.Cloud.gate_count;
  Alcotest.(check int) "outputs" 3 (List.length cloud.Hb_workload.Cloud.output_nets);
  let d = Hb_netlist.Builder.freeze b in
  Alcotest.(check int) "instances" 25 (Hb_netlist.Design.instance_count d)

let test_cloud_validation () =
  let b = Hb_netlist.Builder.create ~name:"c" ~library:lib in
  let rng = Hb_util.Rng.create 5L in
  (match Hb_workload.Cloud.grow b ~rng ~prefix:"t" ~inputs:[] ~gates:5 ~outputs:1 () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected empty-inputs rejection");
  (match Hb_workload.Cloud.grow b ~rng ~prefix:"t" ~inputs:[ "x" ] ~gates:2 ~outputs:5 () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected outputs > gates rejection")

let test_cloud_deterministic () =
  let build seed =
    let b = Hb_netlist.Builder.create ~name:"c" ~library:lib in
    Hb_netlist.Builder.add_port b ~name:"i" ~direction:Hb_netlist.Design.Port_in
      ~is_clock:false;
    let rng = Hb_util.Rng.create seed in
    ignore
      (Hb_workload.Cloud.grow b ~rng ~prefix:"t" ~inputs:[ "i" ] ~gates:30
         ~outputs:2 ());
    Hb_netlist.Hbn_format.write (Hb_netlist.Builder.freeze b)
  in
  Alcotest.(check string) "same seed same netlist" (build 9L) (build 9L);
  Alcotest.(check bool) "different seed differs" true (build 9L <> build 10L)

(* ------------------------------------------------------------------ *)
(* Table 1 designs                                                    *)
(* ------------------------------------------------------------------ *)

let test_des_cell_count () =
  let design, _ = Hb_workload.Chips.des () in
  Alcotest.(check int) "DES has 3681 cells" 3681 (stats design).Hb_netlist.Stats.cells

let test_alu_cell_count () =
  let design, _ = Hb_workload.Chips.alu () in
  Alcotest.(check int) "ALU has 899 cells" 899 (stats design).Hb_netlist.Stats.cells

let test_sm1_designs () =
  let flat, _ = Hb_workload.Chips.sm1f () in
  let hier, _ = Hb_workload.Chips.sm1h () in
  let fs = stats flat and hs = stats hier in
  Alcotest.(check int) "SM1F state bits" 12 fs.Hb_netlist.Stats.synchronisers;
  Alcotest.(check int) "SM1H keeps the registers" 12 hs.Hb_netlist.Stats.synchronisers;
  Alcotest.(check bool) "hierarchical is far smaller" true
    (hs.Hb_netlist.Stats.cells * 4 < fs.Hb_netlist.Stats.cells);
  (* The collapsed design contains exactly one macro. *)
  let macros =
    List.filter
      (fun (kind, _) ->
         String.length kind >= 5 && String.sub kind 0 5 = "macro")
      hs.Hb_netlist.Stats.by_kind
  in
  Alcotest.(check int) "one macro kind" 1 (List.length macros)

let test_dsp_multirate () =
  let design, system = Hb_workload.Chips.dsp () in
  let s = stats design in
  Alcotest.(check bool) "sizable cell count" true (s.Hb_netlist.Stats.cells > 700);
  Alcotest.(check int) "two clock domains" 2
    (List.length system.Hb_clock.System.waveforms);
  (* The fast clock runs at twice the rate. *)
  let fck =
    match Hb_clock.System.find system "fck" with
    | Some w -> w
    | None -> Alcotest.fail "fck missing"
  in
  Alcotest.(check int) "2x multiplier" 2 fck.Hb_clock.Waveform.multiplier;
  (* Latches sit between the domains. *)
  Alcotest.(check bool) "has transparent latches" true
    (List.exists (fun (k, _) -> k = "latch") s.Hb_netlist.Stats.by_kind)

let test_chips_deterministic () =
  let d1, _ = Hb_workload.Chips.alu () in
  let d2, _ = Hb_workload.Chips.alu () in
  Alcotest.(check string) "ALU generation is deterministic"
    (Hb_netlist.Hbn_format.write d1) (Hb_netlist.Hbn_format.write d2)

let test_des_round_trips () =
  let design, _ = Hb_workload.Chips.des () in
  let text = Hb_netlist.Hbn_format.write design in
  let back = Hb_netlist.Hbn_format.parse ~library:lib text in
  Alcotest.(check int) "DES round trips through .hbn" 3681
    (Hb_netlist.Design.instance_count back)

(* ------------------------------------------------------------------ *)
(* Pipelines and figures                                              *)
(* ------------------------------------------------------------------ *)

let test_two_phase_structure () =
  let design, system =
    Hb_workload.Pipelines.two_phase ~width:4 ~stages:4 ~gates_per_stage:20 ()
  in
  let s = stats design in
  (* 4 banks of 4 latches. *)
  Alcotest.(check int) "latches" 16 s.Hb_netlist.Stats.synchronisers;
  Alcotest.(check int) "two clocks" 2
    (List.length system.Hb_clock.System.waveforms)

let test_edge_ff_pipeline_structure () =
  let design, system =
    Hb_workload.Pipelines.edge_ff ~width:3 ~stages:3 ~gates_per_stage:10 ()
  in
  let s = stats design in
  Alcotest.(check int) "ffs" 9 s.Hb_netlist.Stats.synchronisers;
  Alcotest.(check int) "one clock" 1 (List.length system.Hb_clock.System.waveforms)

let test_pipeline_rejects_one_stage () =
  match Hb_workload.Pipelines.two_phase ~width:2 ~stages:1 ~gates_per_stage:5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected stages >= 2 rejection"

let test_latch_ring_structure () =
  let design, _ = Hb_workload.Pipelines.latch_ring ~gates:20 () in
  let s = stats design in
  Alcotest.(check int) "two latches" 2 s.Hb_netlist.Stats.synchronisers;
  (* The loop is combinationally closed through the two latches: every
     net is driven, so freezing succeeded, and there is a mux seeding
     the loop. *)
  Alcotest.(check bool) "seed mux present" true
    (Hb_netlist.Design.find_instance design "seed_mux" <> None)

let test_figure1_shape () =
  let design, system = Hb_workload.Figures.figure1 () in
  let s = stats design in
  Alcotest.(check int) "six latches" 6 s.Hb_netlist.Stats.synchronisers;
  Alcotest.(check int) "four phases" 4 (List.length system.Hb_clock.System.waveforms)

let test_clocks_multifrequency () =
  let s = Hb_workload.Clocks.multifrequency ~period:100.0 in
  let edge_count = Array.length (Hb_clock.System.edges s) in
  (* 1x, 2x and 4x clocks: (1+2+4)*2 = 14 edges. *)
  Alcotest.(check int) "edges" 14 edge_count

let () =
  Alcotest.run "hb_workload"
    [ ("cloud",
       [ Alcotest.test_case "grows gates" `Quick test_cloud_grows_requested_gates;
         Alcotest.test_case "validation" `Quick test_cloud_validation;
         Alcotest.test_case "deterministic" `Quick test_cloud_deterministic ]);
      ("chips",
       [ Alcotest.test_case "DES cell count" `Quick test_des_cell_count;
         Alcotest.test_case "ALU cell count" `Quick test_alu_cell_count;
         Alcotest.test_case "SM1F vs SM1H" `Quick test_sm1_designs;
         Alcotest.test_case "DSP multirate" `Quick test_dsp_multirate;
         Alcotest.test_case "deterministic" `Quick test_chips_deterministic;
         Alcotest.test_case "DES round trips" `Quick test_des_round_trips ]);
      ("pipelines",
       [ Alcotest.test_case "two phase structure" `Quick test_two_phase_structure;
         Alcotest.test_case "edge ff structure" `Quick test_edge_ff_pipeline_structure;
         Alcotest.test_case "stage validation" `Quick test_pipeline_rejects_one_stage;
         Alcotest.test_case "latch ring" `Quick test_latch_ring_structure ]);
      ("figures",
       [ Alcotest.test_case "figure 1 shape" `Quick test_figure1_shape ]);
      ("clocks",
       [ Alcotest.test_case "multifrequency" `Quick test_clocks_multifrequency ]);
    ]
