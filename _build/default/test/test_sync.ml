(* Tests for hb_sync: the offset algebra of Sections 4-5 (Figures 2-3),
   including the paper's worked transparent-latch example. *)

let check_float = Alcotest.(check (float 1e-9))

let latch_params ~setup ~d_cz ~d_dz ~width ~control_delay =
  { Hb_sync.Model.setup; d_cz; d_dz; pulse_width = width; control_delay }

let ideal = latch_params ~setup:0.0 ~d_cz:0.0 ~d_dz:0.0 ~width:20.0 ~control_delay:0.0

(* ------------------------------------------------------------------ *)
(* Model                                                              *)
(* ------------------------------------------------------------------ *)

let test_paper_worked_example () =
  (* "a transparent latch, with no internal delays, controlled during each
     clock period by a 20ns clock pulse. Suppose the output is asserted
     5ns after the beginning of the control pulse, then O_zd = 5ns and
     O_dz = -15ns." *)
  let kind = Hb_cell.Kind.Transparent_latch in
  let o_dz = -15.0 in
  check_float "O_zd" 5.0 (Hb_sync.Model.o_zd kind ideal ~o_dz);
  (* "If there is a delay of 2ns between the clock source and the control
     input of the latch then O_zc = 2ns" (no internal control delay). *)
  let delayed = { ideal with Hb_sync.Model.control_delay = 2.0 } in
  check_float "assertion offset uses O_zc when larger" 5.0
    (Hb_sync.Model.assertion_offset kind delayed ~o_dz);
  (* Pushing the data-driven assertion below the control floor pins the
     effective assertion at O_zc = 2. *)
  check_float "floor at O_zc" 2.0
    (Hb_sync.Model.assertion_offset kind delayed ~o_dz:(-19.0))

let test_latch_interval () =
  let kind = Hb_cell.Kind.Transparent_latch in
  let p = latch_params ~setup:0.6 ~d_cz:0.9 ~d_dz:0.7 ~width:20.0 ~control_delay:0.0 in
  let interval = Hb_sync.Model.o_dz_interval kind p in
  check_float "lo" (-20.7) (Hb_util.Interval.lo interval);
  check_float "hi" (-0.7) (Hb_util.Interval.hi interval);
  (* Initial position is the latest legal closure. *)
  check_float "initial" (-0.7) (Hb_sync.Model.initial_o_dz kind p);
  (* O_zd spans [0, W]. *)
  check_float "o_zd at hi" 20.0 (Hb_sync.Model.o_zd kind p ~o_dz:(-0.7));
  check_float "o_zd at lo" 0.0 (Hb_sync.Model.o_zd kind p ~o_dz:(-20.7))

let test_ff_has_no_freedom () =
  let kind = Hb_cell.Kind.Edge_ff in
  let p = latch_params ~setup:0.8 ~d_cz:1.2 ~d_dz:0.0 ~width:40.0 ~control_delay:0.0 in
  let interval = Hb_sync.Model.o_dz_interval kind p in
  check_float "degenerate interval" 0.0 (Hb_util.Interval.width interval);
  check_float "no forward headroom" 0.0
    (Hb_sync.Model.forward_headroom kind p ~o_dz:0.0);
  check_float "no backward headroom" 0.0
    (Hb_sync.Model.backward_headroom kind p ~o_dz:0.0);
  (* Closure at -setup; assertion at control_delay + d_cz. *)
  check_float "closure offset" (-0.8) (Hb_sync.Model.closure_offset kind p ~o_dz:0.0);
  check_float "assertion offset" 1.2 (Hb_sync.Model.assertion_offset kind p ~o_dz:0.0)

let test_tristate_is_transparent () =
  let kind = Hb_cell.Kind.Tristate_driver in
  let p = latch_params ~setup:0.4 ~d_cz:0.8 ~d_dz:0.6 ~width:10.0 ~control_delay:0.0 in
  let interval = Hb_sync.Model.o_dz_interval kind p in
  check_float "width is pulse width" 10.0 (Hb_util.Interval.width interval)

let test_headrooms () =
  let kind = Hb_cell.Kind.Transparent_latch in
  let o_dz = -5.0 in
  check_float "forward headroom" 15.0
    (Hb_sync.Model.forward_headroom kind ideal ~o_dz);
  check_float "backward headroom" 5.0
    (Hb_sync.Model.backward_headroom kind ideal ~o_dz)

let test_validate () =
  let bad = { ideal with Hb_sync.Model.setup = -1.0 } in
  (match Hb_sync.Model.validate bad with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "expected invalid setup");
  let bad = { ideal with Hb_sync.Model.pulse_width = 0.0 } in
  (match Hb_sync.Model.validate bad with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "expected invalid width")

let prop_figure3_relation =
  (* Figure 3: O_zd = W + O_dz + D_dz everywhere inside the legal
     interval. *)
  QCheck.Test.make ~name:"O_zd follows the Figure 3 line" ~count:300
    QCheck.(triple (float_range 1.0 50.0) (float_range 0.0 3.0) (float_range 0.0 1.0))
    (fun (width, d_dz, frac) ->
       let kind = Hb_cell.Kind.Transparent_latch in
       let p = latch_params ~setup:0.5 ~d_cz:0.5 ~d_dz ~width ~control_delay:0.0 in
       let interval = Hb_sync.Model.o_dz_interval kind p in
       let o_dz =
         Hb_util.Interval.lo interval
         +. (frac *. Hb_util.Interval.width interval)
       in
       Float.abs (Hb_sync.Model.o_zd kind p ~o_dz -. (width +. o_dz +. d_dz))
       < 1e-9)

let prop_offsets_monotone =
  (* Both effective offsets are non-decreasing in o_dz: moving the closure
     later never moves the assertion earlier. *)
  QCheck.Test.make ~name:"effective offsets monotone in o_dz" ~count:300
    QCheck.(pair (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (f1, f2) ->
       let kind = Hb_cell.Kind.Transparent_latch in
       let p = latch_params ~setup:0.6 ~d_cz:0.9 ~d_dz:0.7 ~width:20.0
           ~control_delay:1.0 in
       let interval = Hb_sync.Model.o_dz_interval kind p in
       let at f =
         Hb_util.Interval.lo interval +. (f *. Hb_util.Interval.width interval)
       in
       let lo = Stdlib.min (at f1) (at f2) and hi = Stdlib.max (at f1) (at f2) in
       Hb_sync.Model.closure_offset kind p ~o_dz:lo
       <= Hb_sync.Model.closure_offset kind p ~o_dz:hi +. 1e-9
       && Hb_sync.Model.assertion_offset kind p ~o_dz:lo
          <= Hb_sync.Model.assertion_offset kind p ~o_dz:hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Element                                                            *)
(* ------------------------------------------------------------------ *)

let leading = Hb_clock.Edge.leading ~clock:"phi1" ~pulse:0
let trailing = Hb_clock.Edge.trailing ~clock:"phi1" ~pulse:0

let make_latch () =
  Hb_sync.Element.clocked ~id:0 ~inst:7 ~label:"l1#0" ~replica:0
    ~kind:Hb_cell.Kind.Transparent_latch ~params:ideal
    ~assertion_edge:leading ~closure_edge:trailing ()

let test_element_initial_state () =
  let e = make_latch () in
  check_float "initial o_dz at top" 0.0 (Hb_sync.Element.o_dz e);
  check_float "assertion = W initially" 20.0 (Hb_sync.Element.assertion_offset e);
  check_float "closure = 0 initially" 0.0 (Hb_sync.Element.closure_offset e)

let test_element_shift_clamps () =
  let e = make_latch () in
  Hb_sync.Element.shift e (-100.0);
  check_float "clamped at lo" (-20.0) (Hb_sync.Element.o_dz e);
  Hb_sync.Element.shift e 100.0;
  check_float "clamped at hi" 0.0 (Hb_sync.Element.o_dz e);
  Hb_sync.Element.shift e (-5.0);
  check_float "normal shift" (-5.0) (Hb_sync.Element.o_dz e);
  Hb_sync.Element.reset e;
  check_float "reset" 0.0 (Hb_sync.Element.o_dz e)

let test_element_boundaries () =
  let input =
    Hb_sync.Element.input_boundary ~inst:(-1) ~id:1 ~label:"port a" ~edge:leading
      ~arrival_offset:3.0
  in
  check_float "input assertion" 3.0 (Hb_sync.Element.assertion_offset input);
  check_float "no headroom" 0.0 (Hb_sync.Element.forward_headroom input);
  Alcotest.(check bool) "is boundary" true (Hb_sync.Element.is_boundary input);
  Hb_sync.Element.shift input (-1.0);
  check_float "shift is no-op" 3.0 (Hb_sync.Element.assertion_offset input);
  let output =
    Hb_sync.Element.output_boundary ~inst:(-1) ~id:2 ~label:"port y" ~edge:trailing
      ~required_offset:(-2.0)
  in
  check_float "output closure" (-2.0) (Hb_sync.Element.closure_offset output);
  Alcotest.(check bool) "output has no assertion edge" true
    (output.Hb_sync.Element.assertion_edge = None)

let test_element_save_restore () =
  let e = make_latch () in
  Hb_sync.Element.shift e (-7.5);
  let saved = Hb_sync.Element.o_dz e in
  Hb_sync.Element.shift e (-3.0);
  Hb_sync.Element.set_o_dz e saved;
  check_float "restored" (-7.5) (Hb_sync.Element.o_dz e)

let test_element_headrooms_track_shift () =
  let e = make_latch () in
  Hb_sync.Element.shift e (-8.0);
  check_float "forward headroom" 12.0 (Hb_sync.Element.forward_headroom e);
  check_float "backward headroom" 8.0 (Hb_sync.Element.backward_headroom e)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_figure3_relation; prop_offsets_monotone ]
  in
  Alcotest.run "hb_sync"
    [ ("model",
       [ Alcotest.test_case "paper worked example" `Quick test_paper_worked_example;
         Alcotest.test_case "latch interval" `Quick test_latch_interval;
         Alcotest.test_case "ff has no freedom" `Quick test_ff_has_no_freedom;
         Alcotest.test_case "tristate like latch" `Quick test_tristate_is_transparent;
         Alcotest.test_case "headrooms" `Quick test_headrooms;
         Alcotest.test_case "validate" `Quick test_validate ]);
      ("element",
       [ Alcotest.test_case "initial state" `Quick test_element_initial_state;
         Alcotest.test_case "shift clamps" `Quick test_element_shift_clamps;
         Alcotest.test_case "boundaries" `Quick test_element_boundaries;
         Alcotest.test_case "save restore" `Quick test_element_save_restore;
         Alcotest.test_case "headrooms track shift" `Quick test_element_headrooms_track_shift ]);
      ("properties", qsuite);
    ]
