(* Tests for hb_netlist: builder validation, design queries, the .hbn
   format, statistics and hierarchical collapse. *)

let lib = Hb_cell.Library.default ()

let check_float = Alcotest.(check (float 1e-9))

(* A small reference design: clk -> dff -> inv -> dff -> out. *)
let small_design () =
  let b = Hb_netlist.Builder.create ~name:"small" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"clk" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"din" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_port b ~name:"dout" ~direction:Hb_netlist.Design.Port_out
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"ff1" ~cell:"dff"
    ~connections:[ ("d", "din"); ("ck", "clk"); ("q", "n1") ] ();
  Hb_netlist.Builder.add_instance b ~name:"u1" ~cell:"inv_x1"
    ~connections:[ ("a", "n1"); ("y", "n2") ] ();
  Hb_netlist.Builder.add_instance b ~name:"ff2" ~cell:"dff"
    ~connections:[ ("d", "n2"); ("ck", "clk"); ("q", "dout") ] ();
  Hb_netlist.Builder.freeze b

let test_builder_basic () =
  let d = small_design () in
  Alcotest.(check int) "instances" 3 (Hb_netlist.Design.instance_count d);
  Alcotest.(check int) "ports" 3 (Hb_netlist.Design.port_count d);
  Alcotest.(check int) "nets" 5 (Hb_netlist.Design.net_count d);
  Alcotest.(check (list int)) "sync instances" [ 0; 2 ]
    (Hb_netlist.Design.sync_instances d);
  Alcotest.(check (list int)) "comb instances" [ 1 ]
    (Hb_netlist.Design.comb_instances d)

let test_builder_duplicate_port () =
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"p" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  (match
     Hb_netlist.Builder.add_port b ~name:"p"
       ~direction:Hb_netlist.Design.Port_in ~is_clock:false
   with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "expected duplicate port rejection")

let test_builder_unknown_cell () =
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  (match
     Hb_netlist.Builder.add_instance b ~name:"u" ~cell:"not_a_cell"
       ~connections:[] ()
   with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "expected unknown cell rejection")

let test_builder_unknown_pin () =
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  (match
     Hb_netlist.Builder.add_instance b ~name:"u" ~cell:"inv_x1"
       ~connections:[ ("zz", "n") ] ()
   with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "expected unknown pin rejection")

let expect_freeze_failure name build =
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  build b;
  match Hb_netlist.Builder.freeze b with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected freeze failure")

let test_freeze_undriven_net () =
  expect_freeze_failure "undriven input" (fun b ->
      Hb_netlist.Builder.add_instance b ~name:"u" ~cell:"inv_x1"
        ~connections:[ ("a", "floating"); ("y", "n") ] ())

let test_freeze_unconnected_input () =
  expect_freeze_failure "unconnected input pin" (fun b ->
      Hb_netlist.Builder.add_port b ~name:"i" ~direction:Hb_netlist.Design.Port_in
        ~is_clock:false;
      Hb_netlist.Builder.add_instance b ~name:"u" ~cell:"nand2_x1"
        ~connections:[ ("a", "i"); ("y", "n") ] ())

let test_freeze_multiple_drivers () =
  expect_freeze_failure "two gate drivers" (fun b ->
      Hb_netlist.Builder.add_port b ~name:"i" ~direction:Hb_netlist.Design.Port_in
        ~is_clock:false;
      Hb_netlist.Builder.add_instance b ~name:"u1" ~cell:"inv_x1"
        ~connections:[ ("a", "i"); ("y", "shared") ] ();
      Hb_netlist.Builder.add_instance b ~name:"u2" ~cell:"inv_x1"
        ~connections:[ ("a", "i"); ("y", "shared") ] ())

let test_freeze_tristate_bus_ok () =
  let b = Hb_netlist.Builder.create ~name:"bus" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"en1" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"en2" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"a" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_port b ~name:"bv" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"t1" ~cell:"tsbuf"
    ~connections:[ ("d", "a"); ("ck", "en1"); ("q", "bus") ] ();
  Hb_netlist.Builder.add_instance b ~name:"t2" ~cell:"tsbuf"
    ~connections:[ ("d", "bv"); ("ck", "en2"); ("q", "bus") ] ();
  let d = Hb_netlist.Builder.freeze b in
  (match Hb_netlist.Design.find_net d "bus" with
   | Some net ->
     Alcotest.(check int) "two tristate drivers" 2
       (List.length (Hb_netlist.Design.net d net).Hb_netlist.Design.drivers)
   | None -> Alcotest.fail "bus net missing")

let test_freeze_undriven_output_port () =
  expect_freeze_failure "undriven output port" (fun b ->
      Hb_netlist.Builder.add_port b ~name:"o" ~direction:Hb_netlist.Design.Port_out
        ~is_clock:false)

let test_net_load_capacitance () =
  let d = small_design () in
  (match Hb_netlist.Design.find_net d "n1" with
   | Some net ->
     (* inv_x1 'a' pin is 0.010 pF plus 0.015 wire per load. *)
     check_float "n1 load" 0.025
       (Hb_netlist.Design.net d net).Hb_netlist.Design.load_capacitance
   | None -> Alcotest.fail "n1 missing")

let test_design_lookups () =
  let d = small_design () in
  Alcotest.(check bool) "find instance" true
    (Hb_netlist.Design.find_instance d "u1" <> None);
  Alcotest.(check bool) "missing instance" true
    (Hb_netlist.Design.find_instance d "zz" = None);
  Alcotest.(check bool) "find port" true (Hb_netlist.Design.find_port d "clk" <> None);
  Alcotest.(check (list int)) "clock ports" [ 0 ] (Hb_netlist.Design.clock_ports d)

let test_net_of_pin () =
  let d = small_design () in
  let inst =
    match Hb_netlist.Design.find_instance d "u1" with
    | Some i -> i
    | None -> Alcotest.fail "u1 missing"
  in
  (match Hb_netlist.Design.net_of_pin d ~inst ~pin:"a" with
   | Some net ->
     Alcotest.(check string) "input net" "n1"
       (Hb_netlist.Design.net d net).Hb_netlist.Design.net_name
   | None -> Alcotest.fail "pin a unconnected");
  Alcotest.(check bool) "unknown pin" true
    (Hb_netlist.Design.net_of_pin d ~inst ~pin:"zz" = None)

let test_endpoint_rendering () =
  let d = small_design () in
  Alcotest.(check string) "pin endpoint" "u1.a"
    (Hb_netlist.Design.endpoint_to_string d
       (Hb_netlist.Design.Pin { inst = 1; pin = "a" }));
  Alcotest.(check string) "port endpoint" "port clk"
    (Hb_netlist.Design.endpoint_to_string d (Hb_netlist.Design.Port 0))

let test_stats () =
  let d = small_design () in
  let s = Hb_netlist.Stats.compute d in
  Alcotest.(check int) "cells" 3 s.Hb_netlist.Stats.cells;
  Alcotest.(check int) "comb" 1 s.Hb_netlist.Stats.combinational;
  Alcotest.(check int) "sync" 2 s.Hb_netlist.Stats.synchronisers;
  Alcotest.(check int) "nets" 5 s.Hb_netlist.Stats.nets;
  check_float "area" 13.0 s.Hb_netlist.Stats.area;
  Alcotest.(check (list (pair string int))) "by kind"
    [ ("dff", 2); ("inv", 1) ] s.Hb_netlist.Stats.by_kind

let test_hbn_round_trip () =
  let d = small_design () in
  let text = Hb_netlist.Hbn_format.write d in
  let d2 = Hb_netlist.Hbn_format.parse ~library:lib text in
  Alcotest.(check string) "same text after round trip" text
    (Hb_netlist.Hbn_format.write d2)

let test_hbn_parse_example () =
  let text =
    "# a comment\n\
     design counter\n\
     port in clk clock\n\
     port in din\n\
     port out q\n\
     inst u1 dff d=din ck=clk q=q\n\
     end\n"
  in
  let d = Hb_netlist.Hbn_format.parse ~library:lib text in
  Alcotest.(check string) "name" "counter" d.Hb_netlist.Design.design_name;
  Alcotest.(check int) "instances" 1 (Hb_netlist.Design.instance_count d)

let expect_parse_error ~line text =
  match Hb_netlist.Hbn_format.parse ~library:lib text with
  | exception Hb_netlist.Hbn_format.Parse_error { line = got; message = _ } ->
    Alcotest.(check int) "error line" line got
  | _ -> Alcotest.fail "expected parse error"

let test_hbn_errors () =
  expect_parse_error ~line:1 "inst u1 dff d=a\n";
  expect_parse_error ~line:2 "design d\nport sideways x\nend\n";
  expect_parse_error ~line:2 "design d\ninst u1 nonexistent a=b\nend\n";
  expect_parse_error ~line:3 "design d\nport in x\nwhatever\nend\n";
  expect_parse_error ~line:2 "design d\ninst u1 inv_x1 a=\nend\n"

let test_hbn_missing_end () =
  match Hb_netlist.Hbn_format.parse ~library:lib "design d\nport in x\n" with
  | exception Hb_netlist.Hbn_format.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected missing-end error"

let test_hbn_module_paths () =
  let text =
    "design m\n\
     port in i\n\
     inst u1 inv_x1 module=core/alu a=i y=n1\n\
     end\n"
  in
  let d = Hb_netlist.Hbn_format.parse ~library:lib text in
  Alcotest.(check string) "module path" "core/alu"
    (Hb_netlist.Design.instance d 0).Hb_netlist.Design.module_path;
  let d2 =
    Hb_netlist.Hbn_format.parse ~library:lib (Hb_netlist.Hbn_format.write d)
  in
  Alcotest.(check string) "module path round trip" "core/alu"
    (Hb_netlist.Design.instance d2 0).Hb_netlist.Design.module_path

let test_hbn_file_io () =
  let d = small_design () in
  let path = Filename.temp_file "hbn_test" ".hbn" in
  Hb_netlist.Hbn_format.write_file d path;
  let d2 = Hb_netlist.Hbn_format.parse_file ~library:lib path in
  Sys.remove path;
  Alcotest.(check int) "instances survive file io" 3
    (Hb_netlist.Design.instance_count d2)

(* clk -> ff -> [module m: inv chain of length 3] -> ff. The macro's worst
   arc must equal the chain delay computed at the same net loads. *)
let chain_design () =
  let b = Hb_netlist.Builder.create ~name:"chain" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"clk" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"din" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"ff1" ~cell:"dff"
    ~connections:[ ("d", "din"); ("ck", "clk"); ("q", "c0") ] ();
  for i = 0 to 2 do
    Hb_netlist.Builder.add_instance b ~module_path:"m"
      ~name:(Printf.sprintf "i%d" i) ~cell:"inv_x1"
      ~connections:
        [ ("a", Printf.sprintf "c%d" i); ("y", Printf.sprintf "c%d" (i + 1)) ]
      ()
  done;
  Hb_netlist.Builder.add_instance b ~name:"ff2" ~cell:"dff"
    ~connections:[ ("d", "c3"); ("ck", "clk"); ("q", "unused_q") ] ();
  Hb_netlist.Builder.freeze b

let inv_delay d net_name =
  let net =
    match Hb_netlist.Design.find_net d net_name with
    | Some n -> Hb_netlist.Design.net d n
    | None -> Alcotest.fail ("missing net " ^ net_name)
  in
  let cell = Hb_cell.Library.find_exn lib "inv_x1" in
  match Hb_cell.Cell.arc_between cell ~input:"a" ~output:"y" with
  | Some arc ->
    Hb_cell.Delay_model.worst arc.Hb_cell.Cell.delay
      ~load:net.Hb_netlist.Design.load_capacitance
  | None -> Alcotest.fail "inv arc missing"

let test_collapse_chain () =
  let d = chain_design () in
  let collapsed = Hb_netlist.Hierarchy.collapse d in
  Alcotest.(check int) "instance count" 3
    (Hb_netlist.Design.instance_count collapsed);
  let macro =
    match Hb_netlist.Design.find_instance collapsed "macro_m" with
    | Some i -> Hb_netlist.Design.instance collapsed i
    | None -> Alcotest.fail "macro instance missing"
  in
  let expected =
    inv_delay d "c1" +. inv_delay d "c2" +. inv_delay d "c3"
  in
  (match
     Hb_cell.Cell.arc_between macro.Hb_netlist.Design.cell ~input:"i0"
       ~output:"o0"
   with
   | Some arc ->
     check_float "macro worst arc = chain delay" expected
       (Hb_cell.Delay_model.worst arc.Hb_cell.Cell.delay ~load:0.0)
   | None -> Alcotest.fail "macro arc missing")

let test_collapse_no_modules_is_identity () =
  let d = small_design () in
  let collapsed = Hb_netlist.Hierarchy.collapse d in
  Alcotest.(check int) "same instances"
    (Hb_netlist.Design.instance_count d)
    (Hb_netlist.Design.instance_count collapsed)

let test_collapse_rejects_sync_in_module () =
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"clk" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"i" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~module_path:"m" ~name:"ff" ~cell:"dff"
    ~connections:[ ("d", "i"); ("ck", "clk"); ("q", "q") ] ();
  let d = Hb_netlist.Builder.freeze b in
  (match Hb_netlist.Hierarchy.collapse d with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "expected failure for sync in module")

let test_module_paths_listing () =
  let d = chain_design () in
  Alcotest.(check (list string)) "paths" [ "m" ]
    (Hb_netlist.Hierarchy.module_paths d);
  Alcotest.(check (list string)) "no paths" []
    (Hb_netlist.Hierarchy.module_paths (small_design ()))

let test_rebuild_map_cells () =
  let d = small_design () in
  let upsized =
    Hb_netlist.Rebuild.map_cells d ~f:(fun _ inst ->
        if inst.Hb_netlist.Design.inst_name = "u1" then
          Hb_cell.Library.find_exn lib "inv_x4"
        else inst.Hb_netlist.Design.cell)
  in
  (match Hb_netlist.Design.find_instance upsized "u1" with
   | Some i ->
     Alcotest.(check string) "swapped" "inv_x4"
       (Hb_netlist.Design.instance upsized i)
         .Hb_netlist.Design.cell.Hb_cell.Cell.name
   | None -> Alcotest.fail "u1 missing after rebuild");
  Alcotest.(check int) "same net count"
    (Hb_netlist.Design.net_count d)
    (Hb_netlist.Design.net_count upsized)

(* ------------------------------------------------------------------ *)
(* Check (lint)                                                       *)
(* ------------------------------------------------------------------ *)

let rules findings = List.map (fun f -> f.Hb_netlist.Check.rule) findings

let test_lint_clean_design () =
  Alcotest.(check (list string)) "no findings" []
    (rules (Hb_netlist.Check.run (small_design ())))

let test_lint_dangling_output () =
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"i" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"u" ~cell:"inv_x1"
    ~connections:[ ("a", "i"); ("y", "dead") ] ();
  let d = Hb_netlist.Builder.freeze b in
  Alcotest.(check bool) "dangling reported" true
    (List.mem "dangling-output" (rules (Hb_netlist.Check.dangling_outputs d)))

let test_lint_unused_input () =
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"lonely"
    ~direction:Hb_netlist.Design.Port_in ~is_clock:false;
  let d = Hb_netlist.Builder.freeze b in
  Alcotest.(check bool) "unused input reported" true
    (List.mem "unused-input" (rules (Hb_netlist.Check.unused_inputs d)))

let test_lint_high_fanout () =
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"i" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  for k = 0 to 4 do
    Hb_netlist.Builder.add_instance b ~name:(Printf.sprintf "u%d" k)
      ~cell:"inv_x1"
      ~connections:[ ("a", "i"); ("y", Printf.sprintf "o%d" k) ] ()
  done;
  let d = Hb_netlist.Builder.freeze b in
  Alcotest.(check int) "fanout 5 over limit 4" 1
    (List.length (Hb_netlist.Check.high_fanout ~limit:4 d));
  Alcotest.(check int) "within default limit" 0
    (List.length (Hb_netlist.Check.high_fanout d))

let test_lint_clock_as_data () =
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"clk" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_instance b ~name:"u" ~cell:"inv_x1"
    ~connections:[ ("a", "clk"); ("y", "n") ] ();
  let d = Hb_netlist.Builder.freeze b in
  Alcotest.(check bool) "clock into data pin flagged" true
    (List.mem "clock-as-data" (rules (Hb_netlist.Check.clock_as_data d)))

let test_lint_data_as_control () =
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"notclock"
    ~direction:Hb_netlist.Design.Port_in ~is_clock:false;
  Hb_netlist.Builder.add_port b ~name:"d" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"ff" ~cell:"dff"
    ~connections:[ ("d", "d"); ("ck", "notclock"); ("q", "q") ] ();
  let d = Hb_netlist.Builder.freeze b in
  let findings = Hb_netlist.Check.run d in
  Alcotest.(check bool) "error reported first" true
    (match findings with
     | first :: _ ->
       first.Hb_netlist.Check.rule = "data-as-control"
       && first.Hb_netlist.Check.severity = Hb_netlist.Check.Error
     | [] -> false)

let test_lint_self_loop () =
  (* A nand feeding itself (an RS-latch-ish structure) is flagged; freeze
     accepts it since the net has one driver. *)
  let b = Hb_netlist.Builder.create ~name:"x" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"i" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"u" ~cell:"nand2_x1"
    ~connections:[ ("a", "i"); ("b", "loop"); ("y", "loop") ] ();
  let d = Hb_netlist.Builder.freeze b in
  Alcotest.(check bool) "self loop reported" true
    (List.mem "self-loop" (rules (Hb_netlist.Check.self_loop d)))

let () =
  Alcotest.run "hb_netlist"
    [ ("builder",
       [ Alcotest.test_case "basic" `Quick test_builder_basic;
         Alcotest.test_case "duplicate port" `Quick test_builder_duplicate_port;
         Alcotest.test_case "unknown cell" `Quick test_builder_unknown_cell;
         Alcotest.test_case "unknown pin" `Quick test_builder_unknown_pin;
         Alcotest.test_case "undriven net" `Quick test_freeze_undriven_net;
         Alcotest.test_case "unconnected input" `Quick test_freeze_unconnected_input;
         Alcotest.test_case "multiple drivers" `Quick test_freeze_multiple_drivers;
         Alcotest.test_case "tristate bus ok" `Quick test_freeze_tristate_bus_ok;
         Alcotest.test_case "undriven output port" `Quick test_freeze_undriven_output_port;
         Alcotest.test_case "net load" `Quick test_net_load_capacitance ]);
      ("design",
       [ Alcotest.test_case "lookups" `Quick test_design_lookups;
         Alcotest.test_case "net of pin" `Quick test_net_of_pin;
         Alcotest.test_case "endpoints" `Quick test_endpoint_rendering ]);
      ("stats", [ Alcotest.test_case "compute" `Quick test_stats ]);
      ("hbn",
       [ Alcotest.test_case "round trip" `Quick test_hbn_round_trip;
         Alcotest.test_case "parse example" `Quick test_hbn_parse_example;
         Alcotest.test_case "errors" `Quick test_hbn_errors;
         Alcotest.test_case "missing end" `Quick test_hbn_missing_end;
         Alcotest.test_case "module paths" `Quick test_hbn_module_paths;
         Alcotest.test_case "file io" `Quick test_hbn_file_io ]);
      ("hierarchy",
       [ Alcotest.test_case "collapse chain" `Quick test_collapse_chain;
         Alcotest.test_case "identity" `Quick test_collapse_no_modules_is_identity;
         Alcotest.test_case "sync rejected" `Quick test_collapse_rejects_sync_in_module;
         Alcotest.test_case "module paths" `Quick test_module_paths_listing ]);
      ("rebuild", [ Alcotest.test_case "map cells" `Quick test_rebuild_map_cells ]);
      ("check",
       [ Alcotest.test_case "clean design" `Quick test_lint_clean_design;
         Alcotest.test_case "dangling output" `Quick test_lint_dangling_output;
         Alcotest.test_case "unused input" `Quick test_lint_unused_input;
         Alcotest.test_case "high fanout" `Quick test_lint_high_fanout;
         Alcotest.test_case "clock as data" `Quick test_lint_clock_as_data;
         Alcotest.test_case "data as control" `Quick test_lint_data_as_control;
         Alcotest.test_case "self loop" `Quick test_lint_self_loop ]);
    ]
