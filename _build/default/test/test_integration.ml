(* End-to-end integration tests: the Table 1 designs through the full
   engine, file-format round trips into analysis, hierarchical-abstraction
   equivalence, and cross-method validation on larger inputs. *)

let lib = Hb_cell.Library.default ()

let analyse (design, system) = Hb_sta.Engine.analyse ~design ~system ()

let worst report =
  report.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.final.Hb_sta.Slacks.worst

(* ------------------------------------------------------------------ *)
(* Table 1 designs end-to-end                                         *)
(* ------------------------------------------------------------------ *)

let test_des_analysis_completes () =
  let report = analyse (Hb_workload.Chips.des ()) in
  Alcotest.(check bool) "finite worst slack" true
    (Hb_util.Time.is_finite (worst report));
  Alcotest.(check bool) "not capped" false
    report.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.capped

let test_alu_meets_timing () =
  let report = analyse (Hb_workload.Chips.alu ()) in
  Alcotest.(check bool) "ALU meets timing at 100ns" true
    (report.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.status
     = Hb_sta.Algorithm1.Meets_timing)

let test_sm1_hierarchy_preserves_worst_slack () =
  (* The macro abstraction carries exactly the module's worst internal
     path, so SM1H and SM1F agree on the design's worst slack. *)
  let flat = analyse (Hb_workload.Chips.sm1f ()) in
  let hier = analyse (Hb_workload.Chips.sm1h ()) in
  Alcotest.(check (float 1e-6)) "same worst slack" (worst flat) (worst hier)

let test_table1_shape () =
  (* The Table 1 scaling shape: run-time grows with design size, and the
     hierarchical description analyses faster than the flat one. Measured
     in work proxies (cells and analysis passes), not wall-clock, to stay
     deterministic. *)
  let cells (design, _) =
    (Hb_netlist.Stats.compute design).Hb_netlist.Stats.cells
  in
  let des = cells (Hb_workload.Chips.des ()) in
  let alu = cells (Hb_workload.Chips.alu ()) in
  let sm1f = cells (Hb_workload.Chips.sm1f ()) in
  let sm1h = cells (Hb_workload.Chips.sm1h ()) in
  Alcotest.(check bool) "DES > ALU > SM1F > SM1H" true
    (des > alu && alu > sm1f && sm1f > sm1h)

(* ------------------------------------------------------------------ *)
(* File formats through the engine                                    *)
(* ------------------------------------------------------------------ *)

let test_file_round_trip_analysis () =
  let design, system =
    Hb_workload.Pipelines.two_phase ~width:4 ~stages:3 ~gates_per_stage:15 ()
  in
  let direct = Hb_sta.Engine.analyse ~design ~system () in
  let hbn = Filename.temp_file "design" ".hbn" in
  let hbc = Filename.temp_file "clocks" ".hbc" in
  Hb_netlist.Hbn_format.write_file design hbn;
  let oc = open_out hbc in
  output_string oc (Hb_clock.System.to_string system);
  close_out oc;
  let design2 = Hb_netlist.Hbn_format.parse_file ~library:lib hbn in
  let system2 = Hb_clock.System.parse_file hbc in
  Sys.remove hbn;
  Sys.remove hbc;
  let reparsed = Hb_sta.Engine.analyse ~design:design2 ~system:system2 () in
  Alcotest.(check (float 1e-6)) "identical verdict through files"
    (worst direct) (worst reparsed)

(* ------------------------------------------------------------------ *)
(* Figure 1 headline numbers                                          *)
(* ------------------------------------------------------------------ *)

let test_figure1_settling_times () =
  let design, system = Hb_workload.Figures.figure1 () in
  let ctx = Hb_sta.Context.make ~design ~system () in
  let settling = Hb_sta.Baseline.settling_times ctx in
  let main =
    List.fold_left
      (fun acc (_, m, n) -> if n > snd acc then (m, n) else acc)
      (0, 0) settling.Hb_sta.Baseline.per_cluster
  in
  Alcotest.(check (pair int int))
    "time-multiplexed cone: 2 passes instead of 4" (2, 4) main

(* ------------------------------------------------------------------ *)
(* Cross-validation on bigger inputs                                  *)
(* ------------------------------------------------------------------ *)

let test_block_vs_enumeration_alu () =
  let design, system = Hb_workload.Chips.alu () in
  let ctx = Hb_sta.Context.make ~design ~system () in
  let block = Hb_sta.Slacks.compute ctx in
  let exact = Hb_sta.Baseline.path_enumeration ctx ~max_paths:2_000_000 () in
  Alcotest.(check bool) "not truncated" false exact.Hb_sta.Baseline.truncated;
  List.iter
    (fun (element, slack) ->
       Alcotest.(check (float 1e-6))
         (Printf.sprintf "endpoint %d" element)
         slack
         block.Hb_sta.Slacks.element_input_slack.(element))
    exact.Hb_sta.Baseline.endpoint_slacks

let test_multifrequency_pipeline () =
  (* Latches on a 1x clock feeding FFs on 2x and 4x clocks: the multirate
     replication path end-to-end. *)
  let b = Hb_netlist.Builder.create ~name:"mf" ~library:lib in
  let system = Hb_workload.Clocks.multifrequency ~period:100.0 in
  List.iter
    (fun w ->
       Hb_netlist.Builder.add_port b ~name:w.Hb_clock.Waveform.name
         ~direction:Hb_netlist.Design.Port_in ~is_clock:true)
    system.Hb_clock.System.waveforms;
  Hb_netlist.Builder.add_port b ~name:"d" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"l1" ~cell:"latch"
    ~connections:[ ("d", "d"); ("ck", "clk1"); ("q", "a0") ] ();
  Hb_netlist.Builder.add_instance b ~name:"g1" ~cell:"nand2_x1"
    ~connections:[ ("a", "a0"); ("b", "a0"); ("y", "a1") ] ();
  Hb_netlist.Builder.add_instance b ~name:"f2" ~cell:"dff"
    ~connections:[ ("d", "a1"); ("ck", "clk2"); ("q", "b0") ] ();
  Hb_netlist.Builder.add_instance b ~name:"g2" ~cell:"inv_x1"
    ~connections:[ ("a", "b0"); ("y", "b1") ] ();
  Hb_netlist.Builder.add_instance b ~name:"f4" ~cell:"dff"
    ~connections:[ ("d", "b1"); ("ck", "clk4"); ("q", "c0") ] ();
  let design = Hb_netlist.Builder.freeze b in
  let report = Hb_sta.Engine.analyse ~design ~system () in
  (* 1 latch + 2 FF replicas + 4 FF replicas + 1 input boundary = 8. *)
  Alcotest.(check int) "element count" 8
    (Hb_sta.Elements.count report.Hb_sta.Engine.context.Hb_sta.Context.elements);
  Alcotest.(check bool) "meets timing" true
    (report.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.status
     = Hb_sta.Algorithm1.Meets_timing);
  (* Cross-check against enumeration. *)
  let ctx = report.Hb_sta.Engine.context in
  let block = Hb_sta.Slacks.compute ctx in
  let exact = Hb_sta.Baseline.path_enumeration ctx () in
  List.iter
    (fun (element, slack) ->
       Alcotest.(check (float 1e-6))
         (Printf.sprintf "endpoint %d" element)
         slack block.Hb_sta.Slacks.element_input_slack.(element))
    exact.Hb_sta.Baseline.endpoint_slacks

(* ------------------------------------------------------------------ *)
(* Redesign closes the loop on a real design                          *)
(* ------------------------------------------------------------------ *)

let test_redesign_des_improves () =
  (* DES is too slow at 100 ns; a few redesign iterations must improve the
     worst slack even if full closure needs more drive levels than the
     library has. *)
  let design, system = Hb_workload.Chips.des () in
  let before =
    let ctx = Hb_sta.Context.make ~design ~system () in
    (Hb_sta.Algorithm1.run ctx).Hb_sta.Algorithm1.final.Hb_sta.Slacks.worst
  in
  let result =
    Hb_resynth.Loop.optimise ~design ~system ~library:lib ~max_iterations:5 ()
  in
  Alcotest.(check bool) "worst slack improved" true
    (result.Hb_resynth.Loop.final_worst_slack > before)

(* ------------------------------------------------------------------ *)
(* Algorithm interplay                                                *)
(* ------------------------------------------------------------------ *)

let test_algorithm1_offsets_witness_verdict () =
  (* After Algorithm 1 says Meets_timing, a fresh slack evaluation at the
     final offsets must show every terminal strictly positive. *)
  let design, system =
    Hb_workload.Pipelines.two_phase ~width:4 ~stages:4 ~gates_per_stage:25 ()
  in
  let ctx = Hb_sta.Context.make ~design ~system () in
  let outcome = Hb_sta.Algorithm1.run ctx in
  Alcotest.(check bool) "meets" true
    (outcome.Hb_sta.Algorithm1.status = Hb_sta.Algorithm1.Meets_timing);
  Alcotest.(check bool) "offsets witness the verdict" true
    (Hb_sta.Slacks.all_positive (Hb_sta.Slacks.compute ctx))

let test_engine_preserves_algorithm1_state () =
  (* Engine.analyse runs Algorithm 2 but must restore Algorithm 1's
     offsets. *)
  let design, system =
    Hb_workload.Pipelines.edge_ff ~period:14.0 ~width:4 ~stages:3
      ~gates_per_stage:25 ()
  in
  let report = Hb_sta.Engine.analyse ~design ~system () in
  let recomputed = Hb_sta.Slacks.compute report.Hb_sta.Engine.context in
  Alcotest.(check (float 1e-9)) "same worst slack after restore"
    (worst report) recomputed.Hb_sta.Slacks.worst

let prop_random_pipelines_analyse =
  QCheck.Test.make ~name:"random pipelines analyse without errors" ~count:25
    QCheck.(triple (int_range 1 10_000) (int_range 2 5) (int_range 5 40))
    (fun (seed, stages, gates) ->
       let design, system =
         Hb_workload.Pipelines.two_phase ~seed:(Int64.of_int seed) ~width:4
           ~stages ~gates_per_stage:gates ()
       in
       let report = Hb_sta.Engine.analyse ~design ~system () in
       Hb_util.Time.is_finite (worst report)
       && not report.Hb_sta.Engine.outcome.Hb_sta.Algorithm1.capped)

let prop_hierarchy_equivalence =
  (* Tagging all combinational logic as one module and collapsing it to a
     macro preserves the worst slack: macro arcs carry exact longest
     paths at the same loads. *)
  QCheck.Test.make ~name:"hierarchy collapse preserves worst slack" ~count:10
    QCheck.(int_range 1 10_000)
    (fun seed ->
       let design, system =
         Hb_workload.Pipelines.edge_ff ~seed:(Int64.of_int seed) ~width:3
           ~stages:3 ~gates_per_stage:12 ()
       in
       let tagged =
         Hb_netlist.Rebuild.with_module_paths design ~f:(fun _ inst ->
             if Hb_cell.Kind.is_comb
                 inst.Hb_netlist.Design.cell.Hb_cell.Cell.kind
             then "all_logic"
             else "")
       in
       let collapsed = Hb_netlist.Hierarchy.collapse tagged in
       let flat = Hb_sta.Engine.analyse ~design ~system () in
       let hier = Hb_sta.Engine.analyse ~design:collapsed ~system () in
       Float.abs (worst flat -. worst hier) < 1e-6)

let prop_soups_block_equals_enumeration =
  (* Random multi-phase soups with mixed flip-flops and latches: the block
     method and exact path enumeration agree on every endpoint. *)
  QCheck.Test.make ~name:"soups: block = enumeration" ~count:30
    QCheck.(triple (int_range 1 100_000) (int_range 1 4) (int_range 2 12))
    (fun (seed, phases, registers) ->
       let design, system =
         Hb_workload.Soup.random ~seed:(Int64.of_int seed) ~phases ~registers
           ~gates:40 ()
       in
       let ctx = Hb_sta.Context.make ~design ~system () in
       let block = Hb_sta.Slacks.compute ctx in
       let exact = Hb_sta.Baseline.path_enumeration ctx () in
       (not exact.Hb_sta.Baseline.truncated)
       && List.for_all
            (fun (e, s) ->
               Float.abs (s -. block.Hb_sta.Slacks.element_input_slack.(e))
               < 1e-6)
            exact.Hb_sta.Baseline.endpoint_slacks)

let prop_soups_algorithms_terminate =
  (* Algorithm 1 and 2 converge (no cap hit) on every random soup. *)
  QCheck.Test.make ~name:"soups: algorithms terminate" ~count:30
    QCheck.(pair (int_range 1 100_000) (int_range 1 4))
    (fun (seed, phases) ->
       let design, system =
         Hb_workload.Soup.random ~seed:(Int64.of_int seed) ~phases ()
       in
       let ctx = Hb_sta.Context.make ~design ~system () in
       let outcome = Hb_sta.Algorithm1.run ctx in
       let times = Hb_sta.Algorithm2.run ctx in
       (not outcome.Hb_sta.Algorithm1.capped)
       && not times.Hb_sta.Algorithm2.capped)

let prop_soups_passes_minimal =
  (* The chosen pass counts never exceed the per-source-edge accounting. *)
  QCheck.Test.make ~name:"soups: minimized <= per-edge settling" ~count:30
    QCheck.(pair (int_range 1 100_000) (int_range 2 4))
    (fun (seed, phases) ->
       let design, system =
         Hb_workload.Soup.random ~seed:(Int64.of_int seed) ~phases ()
       in
       let ctx = Hb_sta.Context.make ~design ~system () in
       let s = Hb_sta.Baseline.settling_times ctx in
       s.Hb_sta.Baseline.minimized_passes <= s.Hb_sta.Baseline.naive_settling_times)

let prop_transfer_monotone =
  (* The proposition behind Algorithm 1: a complete slack transfer never
     un-satisfies a satisfied path constraint. Endpoint view: every
     element whose input slack was non-negative keeps a non-negative
     input slack after one sweep in either direction. *)
  QCheck.Test.make ~name:"slack transfer preserves satisfied constraints"
    ~count:40
    QCheck.(triple (int_range 1 100_000) (int_range 1 4) bool)
    (fun (seed, phases, forward) ->
       let design, system =
         Hb_workload.Soup.random ~seed:(Int64.of_int seed) ~phases ()
       in
       let ctx = Hb_sta.Context.make ~design ~system () in
       let before = Hb_sta.Slacks.compute ctx in
       let _moved =
         Hb_sta.Algorithm1.transfer_step ctx
           (if forward then `Forward else `Backward)
       in
       let after = Hb_sta.Slacks.compute ctx in
       let ok = ref true in
       Array.iteri
         (fun e slack ->
            if Hb_util.Time.ge slack 0.0
            && not (Hb_util.Time.ge after.Hb_sta.Slacks.element_input_slack.(e)
                      (-.1e-6))
            then ok := false)
         before.Hb_sta.Slacks.element_input_slack;
       Array.iteri
         (fun e slack ->
            if Hb_util.Time.ge slack 0.0
            && not (Hb_util.Time.ge after.Hb_sta.Slacks.element_output_slack.(e)
                      (-.1e-6))
            then ok := false)
         before.Hb_sta.Slacks.element_output_slack;
       !ok)

let prop_verdict_witnessed_by_enumeration =
  (* When Algorithm 1 says Meets_timing, exact path enumeration at the
     final offsets finds no violated endpoint either. *)
  QCheck.Test.make ~name:"Meets_timing witnessed by enumeration" ~count:30
    QCheck.(pair (int_range 1 100_000) (int_range 1 3))
    (fun (seed, phases) ->
       let design, system =
         Hb_workload.Soup.random ~seed:(Int64.of_int seed) ~phases ()
       in
       let ctx = Hb_sta.Context.make ~design ~system () in
       match (Hb_sta.Algorithm1.run ctx).Hb_sta.Algorithm1.status with
       | Hb_sta.Algorithm1.Slow_paths -> true (* nothing claimed *)
       | Hb_sta.Algorithm1.Meets_timing ->
         let exact = Hb_sta.Baseline.path_enumeration ctx () in
         List.for_all
           (fun (_, slack) -> Hb_util.Time.is_positive slack)
           exact.Hb_sta.Baseline.endpoint_slacks)

let prop_hbn_round_trip_preserves_analysis =
  (* Writing any soup to .hbn text and reading it back yields a design
     with the identical timing verdict and worst slack. *)
  QCheck.Test.make ~name:"hbn round trip preserves analysis" ~count:20
    QCheck.(pair (int_range 1 100_000) (int_range 1 3))
    (fun (seed, phases) ->
       let design, system =
         Hb_workload.Soup.random ~seed:(Int64.of_int seed) ~phases ()
       in
       let reparsed =
         Hb_netlist.Hbn_format.parse ~library:lib
           (Hb_netlist.Hbn_format.write design)
       in
       let worst d =
         let ctx = Hb_sta.Context.make ~design:d ~system () in
         (Hb_sta.Algorithm1.run ctx).Hb_sta.Algorithm1.final.Hb_sta.Slacks.worst
       in
       Float.abs (worst design -. worst reparsed) < 1e-9)

(* Algorithm 2's claim: for nodes in too-slow paths the recorded ready
   times are the actual times. On an all-flip-flop design offsets are
   rigid, so "actual" is directly computable: launch edge + d_cz +
   accumulated worst gate delays. *)
let test_algorithm2_actual_ready_times () =
  let b = Hb_netlist.Builder.create ~name:"actual" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"clk" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"din" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"ff1" ~cell:"dff"
    ~connections:[ ("d", "din"); ("ck", "clk"); ("q", "c0") ] ();
  for i = 0 to 2 do
    Hb_netlist.Builder.add_instance b ~name:(Printf.sprintf "g%d" i)
      ~cell:"buf_x1"
      ~connections:
        [ ("a", Printf.sprintf "c%d" i); ("y", Printf.sprintf "c%d" (i + 1)) ]
      ()
  done;
  Hb_netlist.Builder.add_instance b ~name:"ff2" ~cell:"dff"
    ~connections:[ ("d", "c3"); ("ck", "clk"); ("q", "qq") ] ();
  let design = Hb_netlist.Builder.freeze b in
  (* A period too small for the three buffers: the whole chain is slow. *)
  let system =
    Hb_clock.System.make ~overall_period:3.0
      [ Hb_clock.Waveform.make ~name:"clk" ~multiplier:1 ~rise:0.0 ~width:1.2 ]
  in
  let ctx = Hb_sta.Context.make ~design ~system () in
  let _ = Hb_sta.Algorithm1.run ctx in
  let times = Hb_sta.Algorithm2.run ctx in
  (* Actual arrival at c1: launch (trailing edge at 1.2) + d_cz (1.2) +
     buf delay at c1's load; recorded times sit on the broken-open axis
     whose origin is the closure event of the trailing edge, so compare
     differences between consecutive chain nets instead of absolutes. *)
  let net name =
    match Hb_netlist.Design.find_net design name with
    | Some n -> n
    | None -> Alcotest.fail "net"
  in
  let buf_delay net_name =
    let cell = Hb_cell.Library.find_exn lib "buf_x1" in
    match Hb_cell.Cell.arc_between cell ~input:"a" ~output:"y" with
    | Some arc ->
      Hb_cell.Delay_model.worst arc.Hb_cell.Cell.delay
        ~load:
          (Hb_netlist.Design.net design (net net_name))
            .Hb_netlist.Design.load_capacitance
    | None -> Alcotest.fail "arc"
  in
  let ready name = times.Hb_sta.Algorithm2.ready.(net name) in
  Alcotest.(check (float 1e-6)) "c0->c1 increment is the buffer delay"
    (buf_delay "c1")
    (ready "c1" -. ready "c0");
  Alcotest.(check (float 1e-6)) "c1->c2 increment"
    (buf_delay "c2")
    (ready "c2" -. ready "c1");
  Alcotest.(check (float 1e-6)) "c2->c3 increment"
    (buf_delay "c3")
    (ready "c3" -. ready "c2")

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_random_pipelines_analyse; prop_hierarchy_equivalence;
        prop_soups_block_equals_enumeration; prop_soups_algorithms_terminate;
        prop_soups_passes_minimal; prop_transfer_monotone;
        prop_verdict_witnessed_by_enumeration;
        prop_hbn_round_trip_preserves_analysis ]
  in
  Alcotest.run "integration"
    [ ("table1",
       [ Alcotest.test_case "DES completes" `Quick test_des_analysis_completes;
         Alcotest.test_case "ALU meets timing" `Quick test_alu_meets_timing;
         Alcotest.test_case "SM1F = SM1H worst slack" `Quick
           test_sm1_hierarchy_preserves_worst_slack;
         Alcotest.test_case "size ordering" `Quick test_table1_shape ]);
      ("files",
       [ Alcotest.test_case "round trip analysis" `Quick test_file_round_trip_analysis ]);
      ("figure1",
       [ Alcotest.test_case "settling times" `Quick test_figure1_settling_times ]);
      ("cross-validation",
       [ Alcotest.test_case "ALU block = enumeration" `Quick
           test_block_vs_enumeration_alu;
         Alcotest.test_case "multifrequency" `Quick test_multifrequency_pipeline ]);
      ("redesign",
       [ Alcotest.test_case "DES improves" `Quick test_redesign_des_improves ]);
      ("algorithms",
       [ Alcotest.test_case "offsets witness verdict" `Quick
           test_algorithm1_offsets_witness_verdict;
         Alcotest.test_case "engine preserves state" `Quick
           test_engine_preserves_algorithm1_state;
         Alcotest.test_case "algorithm 2 actual ready times" `Quick
           test_algorithm2_actual_ready_times ]);
      ("properties", qsuite);
    ]
