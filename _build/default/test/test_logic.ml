(* Tests for hb_logic (cell semantics, simulation) and the static
   false-path refinement built on it. *)

let lib = Hb_cell.Library.default ()
let check_time = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Func                                                               *)
(* ------------------------------------------------------------------ *)

let test_evaluate_gates () =
  let eval kind inputs = Hb_logic.Func.evaluate kind inputs in
  Alcotest.(check (option bool)) "inv" (Some false) (eval Hb_cell.Kind.Inv [ true ]);
  Alcotest.(check (option bool)) "nand2 11" (Some false)
    (eval (Hb_cell.Kind.Nand 2) [ true; true ]);
  Alcotest.(check (option bool)) "nand2 10" (Some true)
    (eval (Hb_cell.Kind.Nand 2) [ true; false ]);
  Alcotest.(check (option bool)) "nor3 000" (Some true)
    (eval (Hb_cell.Kind.Nor 3) [ false; false; false ]);
  Alcotest.(check (option bool)) "xor" (Some true)
    (eval Hb_cell.Kind.Xor2 [ true; false ]);
  Alcotest.(check (option bool)) "aoi22" (Some false)
    (eval Hb_cell.Kind.Aoi22 [ true; true; false; false ]);
  Alcotest.(check (option bool)) "oai22" (Some true)
    (eval Hb_cell.Kind.Oai22 [ true; false; false; false ]);
  Alcotest.(check (option bool)) "mux sel=0 picks a" (Some true)
    (eval Hb_cell.Kind.Mux2 [ true; false; false ]);
  Alcotest.(check (option bool)) "mux sel=1 picks b" (Some false)
    (eval Hb_cell.Kind.Mux2 [ true; false; true ]);
  Alcotest.(check (option bool)) "maj3" (Some true)
    (eval Hb_cell.Kind.Majority3 [ true; true; false ]);
  Alcotest.(check (option bool)) "macro unknown" None
    (eval (Hb_cell.Kind.Macro 2) [ true; false ]);
  Alcotest.(check (option bool)) "arity mismatch" None
    (eval Hb_cell.Kind.And2 [ true ])

let test_side_requirements () =
  let req kind ~on_path ~side =
    Hb_logic.Func.side_requirement kind ~on_path ~side
  in
  Alcotest.(check (option bool)) "nand side high" (Some true)
    (req (Hb_cell.Kind.Nand 2) ~on_path:0 ~side:1);
  Alcotest.(check (option bool)) "nor side low" (Some false)
    (req (Hb_cell.Kind.Nor 2) ~on_path:1 ~side:0);
  Alcotest.(check (option bool)) "self has none" None
    (req (Hb_cell.Kind.Nand 2) ~on_path:1 ~side:1);
  Alcotest.(check (option bool)) "xor has none" None
    (req Hb_cell.Kind.Xor2 ~on_path:0 ~side:1);
  Alcotest.(check (option bool)) "mux data0 needs sel=0" (Some false)
    (req Hb_cell.Kind.Mux2 ~on_path:0 ~side:2);
  Alcotest.(check (option bool)) "mux data1 needs sel=1" (Some true)
    (req Hb_cell.Kind.Mux2 ~on_path:1 ~side:2);
  Alcotest.(check (option bool)) "mux select path free" None
    (req Hb_cell.Kind.Mux2 ~on_path:2 ~side:0)

let prop_nand_demorgan =
  QCheck.Test.make ~name:"nand = not and / nor = not or" ~count:200
    QCheck.(pair bool bool)
    (fun (a, b) ->
       Hb_logic.Func.evaluate (Hb_cell.Kind.Nand 2) [ a; b ]
       = Some (not (a && b))
       && Hb_logic.Func.evaluate (Hb_cell.Kind.Nor 2) [ a; b ]
          = Some (not (a || b))
       && Hb_logic.Func.evaluate Hb_cell.Kind.Xnor2 [ a; b ] = Some (a = b))

(* ------------------------------------------------------------------ *)
(* Sim                                                                *)
(* ------------------------------------------------------------------ *)

let counter_design () =
  (* 1-bit toggler: q -> inv -> d; output q. *)
  let b = Hb_netlist.Builder.create ~name:"tog" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"clk" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"q" ~direction:Hb_netlist.Design.Port_out
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"ff" ~cell:"dff"
    ~connections:[ ("d", "nd"); ("ck", "clk"); ("q", "nq") ] ();
  Hb_netlist.Builder.add_instance b ~name:"u" ~cell:"inv_x1"
    ~connections:[ ("a", "nq"); ("y", "nd") ] ();
  Hb_netlist.Builder.add_instance b ~name:"ob" ~cell:"buf_x1"
    ~connections:[ ("a", "nq"); ("y", "q") ] ();
  Hb_netlist.Builder.freeze b

let test_sim_toggler () =
  let sim = Hb_logic.Sim.create (counter_design ()) in
  let seen = ref [] in
  for _ = 1 to 4 do
    Hb_logic.Sim.step sim;
    seen := Hb_logic.Sim.output_value sim ~port:"q" :: !seen
  done;
  (* q starts false; d = not q = true, so q alternates t f t f. *)
  Alcotest.(check (list bool)) "alternating"
    [ false; true; false; true ] !seen

let test_sim_combinational () =
  let b = Hb_netlist.Builder.create ~name:"comb" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"a" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_port b ~name:"bb" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_port b ~name:"y" ~direction:Hb_netlist.Design.Port_out
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"g" ~cell:"xor2_x1"
    ~connections:[ ("a", "a"); ("b", "bb"); ("y", "t") ] ();
  Hb_netlist.Builder.add_instance b ~name:"ob" ~cell:"buf_x1"
    ~connections:[ ("a", "t"); ("y", "y") ] ();
  let sim = Hb_logic.Sim.create (Hb_netlist.Builder.freeze b) in
  List.iter
    (fun (a, b_, expected) ->
       Hb_logic.Sim.set_input sim ~port:"a" a;
       Hb_logic.Sim.set_input sim ~port:"bb" b_;
       Hb_logic.Sim.step sim;
       Alcotest.(check bool)
         (Printf.sprintf "xor %b %b" a b_)
         expected
         (Hb_logic.Sim.output_value sim ~port:"y"))
    [ (false, false, false); (true, false, true); (true, true, false) ]

let test_sim_workloads_are_live () =
  (* Generated designs must actually compute: random stimulus produces
     plenty of toggling activity. *)
  List.iter
    (fun (name, (design, _)) ->
       let sim = Hb_logic.Sim.create design in
       let rng = Hb_util.Rng.create 7L in
       let inputs =
         List.filter_map
           (fun p ->
              let port = Hb_netlist.Design.port design p in
              match port.Hb_netlist.Design.direction, port.Hb_netlist.Design.is_clock with
              | Hb_netlist.Design.Port_in, false ->
                Some port.Hb_netlist.Design.port_name
              | _, _ -> None)
           (List.init (Hb_netlist.Design.port_count design) Fun.id)
       in
       for _ = 1 to 16 do
         List.iter
           (fun port ->
              Hb_logic.Sim.set_input sim ~port (Hb_util.Rng.bool rng))
           inputs;
         Hb_logic.Sim.step sim
       done;
       Alcotest.(check bool) (name ^ " toggles") true
         (Hb_logic.Sim.total_toggles sim > 50))
    [ ("alu", Hb_workload.Chips.alu ());
      ("sm1f", Hb_workload.Chips.sm1f ());
      ("pipeline",
       Hb_workload.Pipelines.edge_ff ~width:4 ~stages:3 ~gates_per_stage:20 ());
    ]

(* ------------------------------------------------------------------ *)
(* False paths                                                        *)
(* ------------------------------------------------------------------ *)

let single_clock ?(period = 100.0) () =
  Hb_clock.System.make ~overall_period:period
    [ Hb_clock.Waveform.make ~name:"clk" ~multiplier:1 ~rise:0.0
        ~width:(0.4 *. period) ]

(* The classic conflicting-reconvergence false path. The launch register
   ff1 reaches ff2 only through a long chain whose middle traverses
   nand(_, s) and then nor(_, s): propagating a transition along it would
   need s = 1 and s = 0 simultaneously, so ff1's (unique, worst) path is
   provably false. The side register ffs launches true paths that skip
   the 4-buffer head, so the worst sensitisable slack is strictly better
   by the head delay. *)
let false_path_design () =
  let b = Hb_netlist.Builder.create ~name:"falsey" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"clk" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"din" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_port b ~name:"sel" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"ffs" ~cell:"dff"
    ~connections:[ ("d", "sel"); ("ck", "clk"); ("q", "s") ] ();
  Hb_netlist.Builder.add_instance b ~name:"ff1" ~cell:"dff"
    ~connections:[ ("d", "din"); ("ck", "clk"); ("q", "h0") ] ();
  (* Head: 4 buffers only ff1's path traverses. *)
  for i = 0 to 3 do
    Hb_netlist.Builder.add_instance b ~name:(Printf.sprintf "head%d" i)
      ~cell:"buf_x1"
      ~connections:
        [ ("a", Printf.sprintf "h%d" i); ("y", Printf.sprintf "h%d" (i + 1)) ]
      ()
  done;
  Hb_netlist.Builder.add_instance b ~name:"g_mid1" ~cell:"nand2_x1"
    ~connections:[ ("a", "h4"); ("b", "s"); ("y", "m0") ] ();
  for i = 0 to 1 do
    Hb_netlist.Builder.add_instance b ~name:(Printf.sprintf "tail%d" i)
      ~cell:"buf_x1"
      ~connections:
        [ ("a", Printf.sprintf "m%d" i); ("y", Printf.sprintf "m%d" (i + 1)) ]
      ()
  done;
  Hb_netlist.Builder.add_instance b ~name:"g_mid2" ~cell:"nor2_x1"
    ~connections:[ ("a", "m2"); ("b", "s"); ("y", "d2") ] ();
  Hb_netlist.Builder.add_instance b ~name:"ff2" ~cell:"dff"
    ~connections:[ ("d", "d2"); ("ck", "clk"); ("q", "qq") ] ();
  Hb_netlist.Builder.freeze b

let endpoint_of ctx design name =
  let inst =
    match Hb_netlist.Design.find_instance design name with
    | Some i -> i
    | None -> Alcotest.fail "instance"
  in
  List.hd
    (Hashtbl.find ctx.Hb_sta.Context.elements.Hb_sta.Elements.replicas_of_inst inst)

let test_false_path_detected () =
  let design = false_path_design () in
  let ctx = Hb_sta.Context.make ~design ~system:(single_clock ()) () in
  let endpoint = endpoint_of ctx design "ff2" in
  let paths = Hb_sta.Paths.enumerate ctx ~endpoint ~limit:20 in
  Alcotest.(check bool) "several paths" true (List.length paths >= 2);
  let worst = List.hd paths in
  Alcotest.(check bool) "worst path is provably false" true
    (Hb_sta.False_paths.statically_false ctx worst)

let test_refinement_improves_slack () =
  let design = false_path_design () in
  let ctx = Hb_sta.Context.make ~design ~system:(single_clock ()) () in
  let endpoint = endpoint_of ctx design "ff2" in
  match Hb_sta.False_paths.refine_endpoint ctx ~endpoint () with
  | Some refined ->
    Alcotest.(check bool) "skipped at least one false path" true
      (refined.Hb_sta.False_paths.false_skipped >= 1);
    (match refined.Hb_sta.False_paths.true_slack with
     | Some true_slack ->
       Alcotest.(check bool) "true slack better than block slack" true
         (true_slack > refined.Hb_sta.False_paths.block_slack +. 1.0)
     | None -> Alcotest.fail "expected a sensitisable path")
  | None -> Alcotest.fail "expected refinement"

let test_true_paths_never_pruned () =
  (* In a pure buffer/inverter chain nothing is prunable. *)
  let b = Hb_netlist.Builder.create ~name:"chainy" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"clk" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"din" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"ff1" ~cell:"dff"
    ~connections:[ ("d", "din"); ("ck", "clk"); ("q", "c0") ] ();
  for i = 0 to 3 do
    Hb_netlist.Builder.add_instance b ~name:(Printf.sprintf "g%d" i)
      ~cell:(if i mod 2 = 0 then "inv_x1" else "buf_x1")
      ~connections:
        [ ("a", Printf.sprintf "c%d" i); ("y", Printf.sprintf "c%d" (i + 1)) ]
      ()
  done;
  Hb_netlist.Builder.add_instance b ~name:"ff2" ~cell:"dff"
    ~connections:[ ("d", "c4"); ("ck", "clk"); ("q", "qq") ] ();
  let design = Hb_netlist.Builder.freeze b in
  let ctx = Hb_sta.Context.make ~design ~system:(single_clock ()) () in
  let endpoint = endpoint_of ctx design "ff2" in
  match Hb_sta.False_paths.refine_endpoint ctx ~endpoint () with
  | Some refined ->
    Alcotest.(check int) "nothing skipped" 0
      refined.Hb_sta.False_paths.false_skipped;
    (match refined.Hb_sta.False_paths.true_slack with
     | Some t -> check_time "block slack kept" refined.Hb_sta.False_paths.block_slack t
     | None -> Alcotest.fail "chain path must be sensitisable")
  | None -> Alcotest.fail "expected refinement"

let test_shared_net_same_requirement_ok () =
  (* Two nands sharing the same side net both need it high: no conflict,
     path stays true. *)
  let b = Hb_netlist.Builder.create ~name:"agree" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"clk" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"din" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_port b ~name:"en" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"ff1" ~cell:"dff"
    ~connections:[ ("d", "din"); ("ck", "clk"); ("q", "q") ] ();
  Hb_netlist.Builder.add_instance b ~name:"g1" ~cell:"nand2_x1"
    ~connections:[ ("a", "q"); ("b", "en"); ("y", "t1") ] ();
  Hb_netlist.Builder.add_instance b ~name:"g2" ~cell:"nand2_x1"
    ~connections:[ ("a", "t1"); ("b", "en"); ("y", "t2") ] ();
  Hb_netlist.Builder.add_instance b ~name:"ff2" ~cell:"dff"
    ~connections:[ ("d", "t2"); ("ck", "clk"); ("q", "qq") ] ();
  let design = Hb_netlist.Builder.freeze b in
  let ctx = Hb_sta.Context.make ~design ~system:(single_clock ()) () in
  let endpoint = endpoint_of ctx design "ff2" in
  let paths = Hb_sta.Paths.enumerate ctx ~endpoint ~limit:5 in
  List.iter
    (fun path ->
       Alcotest.(check bool) "agreeing requirements keep the path" false
         (Hb_sta.False_paths.statically_false ctx path))
    paths

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_nand_demorgan ] in
  Alcotest.run "hb_logic"
    [ ("func",
       [ Alcotest.test_case "gate semantics" `Quick test_evaluate_gates;
         Alcotest.test_case "side requirements" `Quick test_side_requirements ]);
      ("sim",
       [ Alcotest.test_case "toggler" `Quick test_sim_toggler;
         Alcotest.test_case "combinational" `Quick test_sim_combinational;
         Alcotest.test_case "workloads are live" `Quick test_sim_workloads_are_live ]);
      ("false_paths",
       [ Alcotest.test_case "detected" `Quick test_false_path_detected;
         Alcotest.test_case "refinement improves" `Quick test_refinement_improves_slack;
         Alcotest.test_case "true never pruned" `Quick test_true_paths_never_pruned;
         Alcotest.test_case "agreeing requirements" `Quick test_shared_net_same_requirement_ok ]);
      ("properties", qsuite);
    ]
