(* Tests for the hb_cell library: delay models, cell validation and the
   default standard-cell catalogue. *)

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Delay model                                                        *)
(* ------------------------------------------------------------------ *)

let test_arc_eval () =
  let arc = Hb_cell.Delay_model.arc ~intrinsic:0.5 ~slope:10.0 in
  check_float "no load" 0.5 (Hb_cell.Delay_model.eval_arc arc ~load:0.0);
  check_float "loaded" 1.5 (Hb_cell.Delay_model.eval_arc arc ~load:0.1)

let test_arc_rejects_negative () =
  Alcotest.check_raises "negative intrinsic"
    (Invalid_argument "Delay_model.arc: negative intrinsic")
    (fun () -> ignore (Hb_cell.Delay_model.arc ~intrinsic:(-1.0) ~slope:0.0));
  Alcotest.check_raises "negative slope"
    (Invalid_argument "Delay_model.arc: negative slope")
    (fun () -> ignore (Hb_cell.Delay_model.arc ~intrinsic:0.0 ~slope:(-1.0)));
  let arc = Hb_cell.Delay_model.arc ~intrinsic:0.5 ~slope:10.0 in
  Alcotest.check_raises "negative load"
    (Invalid_argument "Delay_model.eval_arc: negative load")
    (fun () -> ignore (Hb_cell.Delay_model.eval_arc arc ~load:(-0.1)))

let test_worst_best () =
  let model =
    Hb_cell.Delay_model.make
      ~rise:(Hb_cell.Delay_model.arc ~intrinsic:1.0 ~slope:10.0)
      ~fall:(Hb_cell.Delay_model.arc ~intrinsic:0.5 ~slope:20.0)
  in
  (* Below the crossover load the rise arc dominates. *)
  check_float "worst at low load" 1.0 (Hb_cell.Delay_model.worst model ~load:0.0);
  check_float "best at low load" 0.5 (Hb_cell.Delay_model.best model ~load:0.0);
  (* Above the crossover (0.05 pF) the fall arc dominates. *)
  check_float "worst at high load" 2.5 (Hb_cell.Delay_model.worst model ~load:0.1);
  check_float "best at high load" 2.0 (Hb_cell.Delay_model.best model ~load:0.1)

let test_scale () =
  let model =
    Hb_cell.Delay_model.symmetric
      (Hb_cell.Delay_model.arc ~intrinsic:1.0 ~slope:10.0)
  in
  let faster = Hb_cell.Delay_model.scale model 0.5 in
  check_float "scaled worst" 1.0 (Hb_cell.Delay_model.worst faster ~load:0.1);
  Alcotest.check_raises "zero factor"
    (Invalid_argument "Delay_model.scale: factor must be positive")
    (fun () -> ignore (Hb_cell.Delay_model.scale model 0.0))

let prop_delay_monotonic_in_load =
  QCheck.Test.make ~name:"worst delay is monotone in load" ~count:300
    QCheck.(triple (float_range 0.0 5.0) (float_range 0.0 50.0)
              (pair (float_range 0.0 2.0) (float_range 0.0 2.0)))
    (fun (intrinsic, slope, (l1, l2)) ->
       let model =
         Hb_cell.Delay_model.symmetric
           (Hb_cell.Delay_model.arc ~intrinsic ~slope)
       in
       let lo = Stdlib.min l1 l2 and hi = Stdlib.max l1 l2 in
       Hb_cell.Delay_model.worst model ~load:lo
       <= Hb_cell.Delay_model.worst model ~load:hi +. 1e-12)

let prop_scale_linear =
  QCheck.Test.make ~name:"scale multiplies delays" ~count:300
    QCheck.(triple (float_range 0.01 3.0) (float_range 0.0 2.0)
              (float_range 0.1 4.0))
    (fun (factor, load, intrinsic) ->
       let model =
         Hb_cell.Delay_model.symmetric
           (Hb_cell.Delay_model.arc ~intrinsic ~slope:7.0)
       in
       let scaled = Hb_cell.Delay_model.scale model factor in
       Float.abs
         (Hb_cell.Delay_model.worst scaled ~load
          -. (factor *. Hb_cell.Delay_model.worst model ~load))
       < 1e-9)

(* ------------------------------------------------------------------ *)
(* Kind                                                               *)
(* ------------------------------------------------------------------ *)

let test_kind_classification () =
  Alcotest.(check bool) "inv is comb" true
    (Hb_cell.Kind.is_comb (Hb_cell.Kind.Comb Hb_cell.Kind.Inv));
  Alcotest.(check bool) "dff is sync" true
    (Hb_cell.Kind.is_sync (Hb_cell.Kind.Sync Hb_cell.Kind.Edge_ff));
  Alcotest.(check bool) "latch is not comb" false
    (Hb_cell.Kind.is_comb (Hb_cell.Kind.Sync Hb_cell.Kind.Transparent_latch))

let test_kind_fan_in () =
  Alcotest.(check int) "nand3" 3 (Hb_cell.Kind.comb_fan_in (Hb_cell.Kind.Nand 3));
  Alcotest.(check int) "aoi22" 4 (Hb_cell.Kind.comb_fan_in Hb_cell.Kind.Aoi22);
  Alcotest.(check int) "mux2" 3 (Hb_cell.Kind.comb_fan_in Hb_cell.Kind.Mux2);
  Alcotest.(check int) "macro" 7 (Hb_cell.Kind.comb_fan_in (Hb_cell.Kind.Macro 7))

let test_kind_names () =
  Alcotest.(check string) "nand2" "nand2"
    (Hb_cell.Kind.to_string (Hb_cell.Kind.Comb (Hb_cell.Kind.Nand 2)));
  Alcotest.(check string) "latch" "latch"
    (Hb_cell.Kind.to_string (Hb_cell.Kind.Sync Hb_cell.Kind.Transparent_latch));
  Alcotest.(check string) "tsbuf" "tsbuf"
    (Hb_cell.Kind.to_string (Hb_cell.Kind.Sync Hb_cell.Kind.Tristate_driver))

(* ------------------------------------------------------------------ *)
(* Cell validation                                                    *)
(* ------------------------------------------------------------------ *)

let simple_delay =
  Hb_cell.Delay_model.symmetric (Hb_cell.Delay_model.arc ~intrinsic:1.0 ~slope:5.0)

let inv_pins =
  [ { Hb_cell.Cell.pin_name = "a"; role = Hb_cell.Cell.Data_in; capacitance = 0.01 };
    { Hb_cell.Cell.pin_name = "y"; role = Hb_cell.Cell.Data_out; capacitance = 0.0 } ]

let inv_arcs = [ { Hb_cell.Cell.from_pin = "a"; to_pin = "y"; delay = simple_delay } ]

let make_inv () =
  Hb_cell.Cell.make ~name:"test_inv" ~kind:(Hb_cell.Kind.Comb Hb_cell.Kind.Inv)
    ~pins:inv_pins ~timing:(Hb_cell.Cell.Comb_timing inv_arcs) ~area:1.0 ~drive:1

let test_cell_ok () =
  let cell = make_inv () in
  Alcotest.(check int) "pin count" 2 (List.length cell.Hb_cell.Cell.pins);
  Alcotest.(check int) "inputs" 1 (List.length (Hb_cell.Cell.input_pins cell));
  Alcotest.(check int) "outputs" 1 (List.length (Hb_cell.Cell.output_pins cell));
  Alcotest.(check int) "controls" 0 (List.length (Hb_cell.Cell.control_pins cell))

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_cell_rejects_bad_arc () =
  expect_invalid "unknown pin in arc" (fun () ->
      Hb_cell.Cell.make ~name:"bad" ~kind:(Hb_cell.Kind.Comb Hb_cell.Kind.Inv)
        ~pins:inv_pins
        ~timing:
          (Hb_cell.Cell.Comb_timing
             [ { Hb_cell.Cell.from_pin = "zz"; to_pin = "y"; delay = simple_delay } ])
        ~area:1.0 ~drive:1)

let test_cell_rejects_mismatched_timing () =
  expect_invalid "comb cell with sync timing" (fun () ->
      Hb_cell.Cell.make ~name:"bad" ~kind:(Hb_cell.Kind.Comb Hb_cell.Kind.Inv)
        ~pins:inv_pins
        ~timing:(Hb_cell.Cell.Sync_timing { setup = 1.0; d_cz = 1.0; d_dz = 0.0 })
        ~area:1.0 ~drive:1);
  expect_invalid "sync cell with comb timing" (fun () ->
      Hb_cell.Cell.make ~name:"bad" ~kind:(Hb_cell.Kind.Sync Hb_cell.Kind.Edge_ff)
        ~pins:inv_pins ~timing:(Hb_cell.Cell.Comb_timing inv_arcs) ~area:1.0
        ~drive:1)

let test_cell_rejects_duplicate_pins () =
  expect_invalid "duplicate pins" (fun () ->
      Hb_cell.Cell.make ~name:"bad" ~kind:(Hb_cell.Kind.Comb Hb_cell.Kind.Inv)
        ~pins:(inv_pins @ inv_pins)
        ~timing:(Hb_cell.Cell.Comb_timing inv_arcs) ~area:1.0 ~drive:1)

let test_cell_sync_needs_pins () =
  expect_invalid "missing control pin" (fun () ->
      Hb_cell.Cell.make ~name:"bad" ~kind:(Hb_cell.Kind.Sync Hb_cell.Kind.Edge_ff)
        ~pins:inv_pins
        ~timing:(Hb_cell.Cell.Sync_timing { setup = 1.0; d_cz = 1.0; d_dz = 0.0 })
        ~area:1.0 ~drive:1)

let test_cell_arc_lookup () =
  let cell = make_inv () in
  Alcotest.(check int) "arcs to y" 1 (List.length (Hb_cell.Cell.arcs_to cell ~output:"y"));
  Alcotest.(check bool) "arc between a and y" true
    (Hb_cell.Cell.arc_between cell ~input:"a" ~output:"y" <> None);
  Alcotest.(check bool) "no arc between y and a" true
    (Hb_cell.Cell.arc_between cell ~input:"y" ~output:"a" = None)

let test_cell_scaled () =
  let cell = make_inv () in
  let fast = Hb_cell.Cell.with_scaled_delays cell ~factor:0.5 ~suffix:"_fast" in
  Alcotest.(check string) "renamed" "test_inv_fast" fast.Hb_cell.Cell.name;
  check_float "area doubled" 2.0 fast.Hb_cell.Cell.area;
  (match Hb_cell.Cell.arc_between fast ~input:"a" ~output:"y" with
   | Some arc ->
     check_float "halved delay" 0.5
       (Hb_cell.Delay_model.worst arc.Hb_cell.Cell.delay ~load:0.0)
   | None -> Alcotest.fail "missing arc")

let test_sync_parameters () =
  let pins =
    [ { Hb_cell.Cell.pin_name = "d"; role = Hb_cell.Cell.Data_in; capacitance = 0.01 };
      { Hb_cell.Cell.pin_name = "ck"; role = Hb_cell.Cell.Control_in; capacitance = 0.02 };
      { Hb_cell.Cell.pin_name = "q"; role = Hb_cell.Cell.Data_out; capacitance = 0.0 } ]
  in
  let cell =
    Hb_cell.Cell.make ~name:"ff" ~kind:(Hb_cell.Kind.Sync Hb_cell.Kind.Edge_ff)
      ~pins ~timing:(Hb_cell.Cell.Sync_timing { setup = 0.8; d_cz = 1.2; d_dz = 0.0 })
      ~area:6.0 ~drive:1
  in
  let setup, d_cz, d_dz = Hb_cell.Cell.sync_parameters cell in
  check_float "setup" 0.8 setup;
  check_float "d_cz" 1.2 d_cz;
  check_float "d_dz" 0.0 d_dz;
  expect_invalid "comb has no sync parameters" (fun () ->
      Hb_cell.Cell.sync_parameters (make_inv ()))

(* ------------------------------------------------------------------ *)
(* Library                                                            *)
(* ------------------------------------------------------------------ *)

let test_default_library_contents () =
  let lib = Hb_cell.Library.default () in
  List.iter
    (fun name ->
       Alcotest.(check bool) (name ^ " present") true
         (Hb_cell.Library.find lib name <> None))
    [ "inv_x1"; "inv_x2"; "inv_x4"; "nand2_x1"; "nor4_x4"; "xor2_x2";
      "aoi22_x1"; "mux2_x4"; "maj3_x1"; "dff"; "latch"; "tsbuf" ]

let test_default_library_arc_coverage () =
  (* Every combinational cell must have an arc from every data input to
     its output. *)
  let lib = Hb_cell.Library.default () in
  List.iter
    (fun cell ->
       if Hb_cell.Kind.is_comb cell.Hb_cell.Cell.kind then
         List.iter
           (fun input ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: arc %s->y" cell.Hb_cell.Cell.name
                   input.Hb_cell.Cell.pin_name)
                true
                (Hb_cell.Cell.arc_between cell
                   ~input:input.Hb_cell.Cell.pin_name ~output:"y"
                 <> None))
           (Hb_cell.Cell.input_pins cell))
    (Hb_cell.Library.cells lib)

let test_upsize_chain () =
  let lib = Hb_cell.Library.default () in
  let x1 = Hb_cell.Library.find_exn lib "nand2_x1" in
  (match Hb_cell.Library.upsize lib x1 with
   | Some x2 ->
     Alcotest.(check string) "x1 -> x2" "nand2_x2" x2.Hb_cell.Cell.name;
     (match Hb_cell.Library.upsize lib x2 with
      | Some x4 ->
        Alcotest.(check string) "x2 -> x4" "nand2_x4" x4.Hb_cell.Cell.name;
        Alcotest.(check bool) "x4 is top" true
          (Hb_cell.Library.upsize lib x4 = None)
      | None -> Alcotest.fail "expected x4")
   | None -> Alcotest.fail "expected x2")

let test_downsize () =
  let lib = Hb_cell.Library.default () in
  let x4 = Hb_cell.Library.find_exn lib "inv_x4" in
  (match Hb_cell.Library.downsize lib x4 with
   | Some c -> Alcotest.(check string) "x4 -> x2" "inv_x2" c.Hb_cell.Cell.name
   | None -> Alcotest.fail "expected downsize");
  let x1 = Hb_cell.Library.find_exn lib "inv_x1" in
  Alcotest.(check bool) "x1 is bottom" true (Hb_cell.Library.downsize lib x1 = None)

let test_upsize_is_faster () =
  let lib = Hb_cell.Library.default () in
  let x1 = Hb_cell.Library.find_exn lib "nand2_x1" in
  let x4 = Hb_cell.Library.find_exn lib "nand2_x4" in
  let delay cell =
    match Hb_cell.Cell.arc_between cell ~input:"a" ~output:"y" with
    | Some arc -> Hb_cell.Delay_model.worst arc.Hb_cell.Cell.delay ~load:0.1
    | None -> Alcotest.fail "missing arc"
  in
  Alcotest.(check bool) "x4 faster under load" true (delay x4 < delay x1);
  Alcotest.(check bool) "x4 larger" true
    (x4.Hb_cell.Cell.area > x1.Hb_cell.Cell.area)

let test_library_duplicate_rejected () =
  let cell = make_inv () in
  expect_invalid "duplicate cells" (fun () ->
      Hb_cell.Library.create [ cell; cell ])

let test_library_lookup () =
  let lib = Hb_cell.Library.default () in
  Alcotest.(check bool) "missing cell" true (Hb_cell.Library.find lib "nope" = None);
  Alcotest.check_raises "find_exn raises" Not_found (fun () ->
      ignore (Hb_cell.Library.find_exn lib "nope"));
  Alcotest.(check bool) "size positive" true (Hb_cell.Library.size lib > 40)

let test_sync_scaled () =
  let lib = Hb_cell.Library.default () in
  let dff = Hb_cell.Library.find_exn lib "dff" in
  let fast = Hb_cell.Cell.with_scaled_delays dff ~factor:0.5 ~suffix:"_h" in
  let setup, d_cz, _ = Hb_cell.Cell.sync_parameters fast in
  check_float "setup halves" 0.4 setup;
  check_float "d_cz halves" 0.6 d_cz

let test_families_do_not_merge_names () =
  (* "latch2" must form its own family, not upsize into "latch". *)
  let lib = Hb_cell.Library.default () in
  let latch2 = Hb_cell.Library.find_exn lib "latch2" in
  Alcotest.(check bool) "latch2 has no upsize" true
    (Hb_cell.Library.upsize lib latch2 = None);
  let latch = Hb_cell.Library.find_exn lib "latch" in
  Alcotest.(check bool) "latch has no upsize" true
    (Hb_cell.Library.upsize lib latch = None)

let test_macro_kind_name () =
  Alcotest.(check string) "macro pp" "macro3"
    (Hb_cell.Kind.to_string (Hb_cell.Kind.Comb (Hb_cell.Kind.Macro 3)))

let test_unate_sense () =
  Alcotest.(check bool) "nand negative" true
    (Hb_cell.Kind.unate_sense (Hb_cell.Kind.Nand 2) = `Negative);
  Alcotest.(check bool) "buf positive" true
    (Hb_cell.Kind.unate_sense Hb_cell.Kind.Buf = `Positive);
  Alcotest.(check bool) "xor non-unate" true
    (Hb_cell.Kind.unate_sense Hb_cell.Kind.Xor2 = `Non_unate);
  Alcotest.(check bool) "macro non-unate" true
    (Hb_cell.Kind.unate_sense (Hb_cell.Kind.Macro 2) = `Non_unate)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_delay_monotonic_in_load; prop_scale_linear ]
  in
  Alcotest.run "hb_cell"
    [ ("delay_model",
       [ Alcotest.test_case "arc eval" `Quick test_arc_eval;
         Alcotest.test_case "rejects negatives" `Quick test_arc_rejects_negative;
         Alcotest.test_case "worst/best" `Quick test_worst_best;
         Alcotest.test_case "scale" `Quick test_scale ]);
      ("kind",
       [ Alcotest.test_case "classification" `Quick test_kind_classification;
         Alcotest.test_case "fan in" `Quick test_kind_fan_in;
         Alcotest.test_case "names" `Quick test_kind_names ]);
      ("cell",
       [ Alcotest.test_case "make" `Quick test_cell_ok;
         Alcotest.test_case "bad arc" `Quick test_cell_rejects_bad_arc;
         Alcotest.test_case "mismatched timing" `Quick test_cell_rejects_mismatched_timing;
         Alcotest.test_case "duplicate pins" `Quick test_cell_rejects_duplicate_pins;
         Alcotest.test_case "sync pin roles" `Quick test_cell_sync_needs_pins;
         Alcotest.test_case "arc lookup" `Quick test_cell_arc_lookup;
         Alcotest.test_case "scaled variant" `Quick test_cell_scaled;
         Alcotest.test_case "sync parameters" `Quick test_sync_parameters ]);
      ("library",
       [ Alcotest.test_case "default contents" `Quick test_default_library_contents;
         Alcotest.test_case "arc coverage" `Quick test_default_library_arc_coverage;
         Alcotest.test_case "upsize chain" `Quick test_upsize_chain;
         Alcotest.test_case "downsize" `Quick test_downsize;
         Alcotest.test_case "upsize is faster" `Quick test_upsize_is_faster;
         Alcotest.test_case "duplicate rejected" `Quick test_library_duplicate_rejected;
         Alcotest.test_case "lookup" `Quick test_library_lookup ]);
      ("extras",
       [ Alcotest.test_case "sync scaled" `Quick test_sync_scaled;
         Alcotest.test_case "family boundaries" `Quick test_families_do_not_merge_names;
         Alcotest.test_case "macro kind name" `Quick test_macro_kind_name;
         Alcotest.test_case "unate sense" `Quick test_unate_sense ]);
      ("properties", qsuite);
    ]
