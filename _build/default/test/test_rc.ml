(* Tests for the RC substrate: tree construction, Elmore delays against
   hand-computed values, wire models, and the delay providers. *)

let check_float = Alcotest.(check (float 1e-9))
let lib = Hb_cell.Library.default ()

(* ------------------------------------------------------------------ *)
(* Tree                                                               *)
(* ------------------------------------------------------------------ *)

let chain3 () =
  (* root -(1k)- n1(1pF) -(2k)- n2(2pF) *)
  Hb_rc.Tree.build
    [ { Hb_rc.Tree.parent = -1; resistance = 0.0; capacitance = 0.0; label = "" };
      { Hb_rc.Tree.parent = 0; resistance = 1.0; capacitance = 1.0; label = "a" };
      { Hb_rc.Tree.parent = 1; resistance = 2.0; capacitance = 2.0; label = "b" };
    ]

let test_tree_basics () =
  let tree = chain3 () in
  Alcotest.(check int) "nodes" 3 (Hb_rc.Tree.node_count tree);
  check_float "total cap" 3.0 (Hb_rc.Tree.total_capacitance tree);
  check_float "path resistance to b" 3.0 (Hb_rc.Tree.path_resistance tree 2);
  Alcotest.(check (option int)) "find a" (Some 1) (Hb_rc.Tree.find tree "a");
  Alcotest.(check (option int)) "find zz" None (Hb_rc.Tree.find tree "zz")

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_tree_validation () =
  expect_invalid (fun () -> Hb_rc.Tree.build []);
  expect_invalid (fun () ->
      Hb_rc.Tree.build
        [ { Hb_rc.Tree.parent = 0; resistance = 0.0; capacitance = 0.0; label = "" } ]);
  expect_invalid (fun () ->
      Hb_rc.Tree.build
        [ { Hb_rc.Tree.parent = -1; resistance = 0.0; capacitance = 0.0; label = "" };
          { Hb_rc.Tree.parent = 5; resistance = 1.0; capacitance = 1.0; label = "" } ]);
  expect_invalid (fun () ->
      Hb_rc.Tree.build
        [ { Hb_rc.Tree.parent = -1; resistance = 0.0; capacitance = 0.0; label = "" };
          { Hb_rc.Tree.parent = 0; resistance = -1.0; capacitance = 1.0; label = "" } ])

(* ------------------------------------------------------------------ *)
(* Elmore                                                             *)
(* ------------------------------------------------------------------ *)

let test_elmore_chain_by_hand () =
  (* Driver 1k into the chain above:
     TD(root) = 1 * (1 + 2)          = 3
     TD(a)    = 3 + 1 * (1 + 2)      = 6
     TD(b)    = 6 + 2 * 2            = 10 *)
  let td = Hb_rc.Elmore.delays (chain3 ()) ~r_driver:1.0 in
  check_float "root" 3.0 td.(0);
  check_float "a" 6.0 td.(1);
  check_float "b" 10.0 td.(2)

let test_elmore_star_by_hand () =
  (* Star: two sinks of 1pF each through 1k segments, driver 2k:
     TD(sink) = 2 * 2 + 1 * 1 = 5 for both. *)
  let tree =
    Hb_rc.Tree.build
      [ { Hb_rc.Tree.parent = -1; resistance = 0.0; capacitance = 0.0; label = "" };
        { Hb_rc.Tree.parent = 0; resistance = 1.0; capacitance = 1.0; label = "s1" };
        { Hb_rc.Tree.parent = 0; resistance = 1.0; capacitance = 1.0; label = "s2" };
      ]
  in
  let td = Hb_rc.Elmore.delays tree ~r_driver:2.0 in
  check_float "s1" 5.0 td.(1);
  check_float "s2" 5.0 td.(2)

let test_upper_bound_dominates () =
  let tree = chain3 () in
  let td = Hb_rc.Elmore.delays tree ~r_driver:1.5 in
  let ub = Hb_rc.Elmore.upper_bounds tree ~r_driver:1.5 in
  Array.iteri
    (fun i d ->
       Alcotest.(check bool) (Printf.sprintf "node %d" i) true (ub.(i) >= d -. 1e-12))
    td

let test_worst_sink_prefers_labels () =
  let tree = chain3 () in
  let node, delay = Hb_rc.Elmore.worst_sink tree ~r_driver:1.0 in
  Alcotest.(check int) "deepest labelled sink" 2 node;
  check_float "its delay" 10.0 delay

let prop_elmore_monotone_in_driver =
  QCheck.Test.make ~name:"Elmore delay grows with driver resistance" ~count:200
    QCheck.(pair (float_range 0.0 10.0) (float_range 0.0 10.0))
    (fun (r1, r2) ->
       let lo = Stdlib.min r1 r2 and hi = Stdlib.max r1 r2 in
       let tree = chain3 () in
       let d_lo = Hb_rc.Elmore.delays tree ~r_driver:lo in
       let d_hi = Hb_rc.Elmore.delays tree ~r_driver:hi in
       Array.for_all Fun.id (Array.mapi (fun i d -> d <= d_hi.(i) +. 1e-12) d_lo))

let prop_elmore_exceeds_lumped_when_wired =
  (* With positive wire resistance, per-sink Elmore >= r_driver * C_total
     (the lumped value). *)
  QCheck.Test.make ~name:"Elmore >= lumped for wired sinks" ~count:200
    QCheck.(triple (float_range 0.1 5.0) (float_range 0.0 1.0) (int_range 1 6))
    (fun (r_driver, seg_r, sinks) ->
       let parameters =
         { Hb_rc.Wire_model.segment_resistance = seg_r;
           segment_capacitance = 0.01;
           topology = Hb_rc.Wire_model.Star }
       in
       let tree =
         Hb_rc.Wire_model.net_tree ~parameters
           ~sinks:(List.init sinks (fun i -> (Printf.sprintf "s%d" i, 0.02)))
       in
       let lumped = r_driver *. Hb_rc.Tree.total_capacitance tree in
       let _, worst = Hb_rc.Elmore.worst_sink tree ~r_driver in
       worst >= lumped -. 1e-12)

(* ------------------------------------------------------------------ *)
(* Wire model                                                         *)
(* ------------------------------------------------------------------ *)

let test_wire_star_vs_chain () =
  let sinks = [ ("a", 0.01); ("b", 0.01); ("c", 0.01) ] in
  let star =
    Hb_rc.Wire_model.net_tree
      ~parameters:{ Hb_rc.Wire_model.default with topology = Hb_rc.Wire_model.Star }
      ~sinks
  in
  let chain =
    Hb_rc.Wire_model.net_tree
      ~parameters:{ Hb_rc.Wire_model.default with topology = Hb_rc.Wire_model.Chain }
      ~sinks
  in
  check_float "same total capacitance"
    (Hb_rc.Tree.total_capacitance star)
    (Hb_rc.Tree.total_capacitance chain);
  (* The chain's far sink sees more resistance, so it is slower. *)
  let _, worst_star = Hb_rc.Elmore.worst_sink star ~r_driver:1.0 in
  let _, worst_chain = Hb_rc.Elmore.worst_sink chain ~r_driver:1.0 in
  Alcotest.(check bool) "chain slower than star" true (worst_chain > worst_star)

let test_wire_cap_matches_lumped_model () =
  (* The default wire parameters mirror the lumped model's 0.015 pF per
     load, so both estimators see the same total capacitance. *)
  let sinks = [ ("a", 0.01); ("b", 0.02) ] in
  let tree = Hb_rc.Wire_model.net_tree ~parameters:Hb_rc.Wire_model.default ~sinks in
  check_float "total" (0.01 +. 0.02 +. (2.0 *. 0.015))
    (Hb_rc.Tree.total_capacitance tree)

(* ------------------------------------------------------------------ *)
(* Providers in the analyser                                          *)
(* ------------------------------------------------------------------ *)

let single_clock ?(period = 100.0) () =
  Hb_clock.System.make ~overall_period:period
    [ Hb_clock.Waveform.make ~name:"clk" ~multiplier:1 ~rise:0.0
        ~width:(0.4 *. period) ]

let small_design () =
  let b = Hb_netlist.Builder.create ~name:"prov" ~library:lib in
  Hb_netlist.Builder.add_port b ~name:"clk" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:true;
  Hb_netlist.Builder.add_port b ~name:"d" ~direction:Hb_netlist.Design.Port_in
    ~is_clock:false;
  Hb_netlist.Builder.add_instance b ~name:"ff1" ~cell:"dff"
    ~connections:[ ("d", "d"); ("ck", "clk"); ("q", "n0") ] ();
  Hb_netlist.Builder.add_instance b ~name:"g1" ~cell:"nand2_x1"
    ~connections:[ ("a", "n0"); ("b", "n0"); ("y", "n1") ] ();
  Hb_netlist.Builder.add_instance b ~name:"g2" ~cell:"inv_x1"
    ~connections:[ ("a", "n1"); ("y", "n2") ] ();
  Hb_netlist.Builder.add_instance b ~name:"ff2" ~cell:"dff"
    ~connections:[ ("d", "n2"); ("ck", "clk"); ("q", "n3") ] ();
  Hb_netlist.Builder.freeze b

let worst_with ?delays design =
  let ctx = Hb_sta.Context.make ~design ~system:(single_clock ()) ?delays () in
  (Hb_sta.Algorithm1.run ctx).Hb_sta.Algorithm1.final.Hb_sta.Slacks.worst

let test_rc_provider_more_conservative () =
  let design = small_design () in
  let lumped = worst_with design in
  let rc = worst_with ~delays:(Hb_sta.Delays.rc ()) design in
  Alcotest.(check bool) "rc slack <= lumped slack" true
    (Hb_util.Time.le rc lumped)

let test_rc_provider_zero_wire_matches_lumped () =
  (* With zero segment resistance, the star Elmore delay collapses to
     r_driver * C_total — exactly the lumped linear model. *)
  let design = small_design () in
  let zero_wire =
    Hb_sta.Delays.rc
      ~parameters:
        { Hb_rc.Wire_model.segment_resistance = 0.0;
          segment_capacitance = 0.015;
          topology = Hb_rc.Wire_model.Star }
      ()
  in
  Alcotest.(check (float 1e-6)) "identical worst slack"
    (worst_with design) (worst_with ~delays:zero_wire design)

let test_chain_topology_slower () =
  let design = small_design () in
  let with_topology topology =
    worst_with
      ~delays:
        (Hb_sta.Delays.rc
           ~parameters:{ Hb_rc.Wire_model.default with topology }
           ())
      design
  in
  Alcotest.(check bool) "chain <= star slack" true
    (Hb_util.Time.le
       (with_topology Hb_rc.Wire_model.Chain)
       (with_topology Hb_rc.Wire_model.Star))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_elmore_monotone_in_driver; prop_elmore_exceeds_lumped_when_wired ]
  in
  Alcotest.run "hb_rc"
    [ ("tree",
       [ Alcotest.test_case "basics" `Quick test_tree_basics;
         Alcotest.test_case "validation" `Quick test_tree_validation ]);
      ("elmore",
       [ Alcotest.test_case "chain by hand" `Quick test_elmore_chain_by_hand;
         Alcotest.test_case "star by hand" `Quick test_elmore_star_by_hand;
         Alcotest.test_case "upper bound dominates" `Quick test_upper_bound_dominates;
         Alcotest.test_case "worst sink" `Quick test_worst_sink_prefers_labels ]);
      ("wire",
       [ Alcotest.test_case "star vs chain" `Quick test_wire_star_vs_chain;
         Alcotest.test_case "cap parity with lumped" `Quick test_wire_cap_matches_lumped_model ]);
      ("provider",
       [ Alcotest.test_case "rc conservative" `Quick test_rc_provider_more_conservative;
         Alcotest.test_case "zero wire = lumped" `Quick test_rc_provider_zero_wire_matches_lumped;
         Alcotest.test_case "chain slower" `Quick test_chain_topology_slower ]);
      ("properties", qsuite);
    ]
